"""Parent/child delegation consistency (paper §IV-D, Figures 13/14).

Following the Sommese et al. framework: compare the NS set the parent
zone serves for a domain (*P*) with the set the domain's own
authoritative servers return (*C*):

- ``P = C`` — consistent (the paper's 76.8%);
- intersecting: ``P ⊂ C``, ``C ⊂ P``, or neither contains the other;
- disjoint: no common hostname, further split by whether the *address*
  sets still overlap (renamed nameservers vs genuinely different
  infrastructure).

Also scans the inconsistent-but-not-defective cases for dangling
parent-side records whose nameserver domains are registrable — the
paper's 13 d_ns / 26 domains / 7 countries finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..dns.name import DnsName
from ..registry.registrar import Quote, Registrar
from .dataset import (
    CONSISTENCY_CODES,
    UNCLASSIFIED,
    MeasurementDataset,
    ProbeResult,
    ServerOutcome,
)
from .delegation import DelegationAnalysis

__all__ = ["ConsistencyClass", "ConsistencyReport", "ConsistencyAnalysis"]


class ConsistencyClass:
    """Figure-13 taxonomy labels."""

    EQUAL = "P=C"
    P_SUBSET_C = "P⊂C"
    C_SUBSET_P = "C⊂P"
    OVERLAP_NEITHER = "P∩C≠∅, neither"
    DISJOINT_IP_OVERLAP = "P∩C=∅, IP overlap"
    DISJOINT = "P∩C=∅, no IP overlap"

    ALL = (
        EQUAL,
        P_SUBSET_C,
        C_SUBSET_P,
        OVERLAP_NEITHER,
        DISJOINT_IP_OVERLAP,
        DISJOINT,
    )


# The dataset layer's fused column pass emits the same taxonomy, byte
# codes indexed in ALL order; keep the two declarations locked together.
assert CONSISTENCY_CODES == ConsistencyClass.ALL


@dataclass(frozen=True)
class ConsistencyReport:
    """One domain's parent/child comparison."""

    domain: DnsName
    iso2: str
    verdict: str
    parent_only: Tuple[DnsName, ...]
    child_only: Tuple[DnsName, ...]
    has_single_label_ns: bool

    @property
    def consistent(self) -> bool:
        return self.verdict == ConsistencyClass.EQUAL


class ConsistencyAnalysis:
    """Figure 13/14 classification plus the dangling-record scan."""

    def __init__(
        self,
        dataset: MeasurementDataset,
        registrar: Optional[Registrar] = None,
        government_suffixes: Optional[Mapping[str, DnsName]] = None,
    ) -> None:
        self._dataset = dataset
        self._registrar = registrar
        self._gov_suffixes = dict(government_suffixes or {})
        self._reports: Optional[Dict[DnsName, ConsistencyReport]] = None

    # ------------------------------------------------------------------
    def _address_set(
        self, result: ProbeResult, hostnames: Tuple[DnsName, ...]
    ) -> Set:
        addresses = set()
        for hostname in hostnames:
            server = result.servers.get(hostname)
            if server is not None:
                addresses.update(server.addresses)
        return addresses

    def classify(self, result: ProbeResult) -> Optional[ConsistencyReport]:
        """Compare P and C for one responsive domain.

        Domains without an authoritative child answer have no C to
        compare and are excluded (as in the paper, which classifies
        responsive domains).
        """
        if result.parent_status != "referral":
            return None
        if not result.child_ns:
            return None
        parent: Set[DnsName] = set(result.parent_ns)
        child: Set[DnsName] = set(result.child_ns)
        single_label = any(len(h) == 1 for h in parent | child)
        if parent == child:
            verdict = ConsistencyClass.EQUAL
        elif parent & child:
            if parent < child:
                verdict = ConsistencyClass.P_SUBSET_C
            elif child < parent:
                verdict = ConsistencyClass.C_SUBSET_P
            else:
                verdict = ConsistencyClass.OVERLAP_NEITHER
        else:
            parent_ips = self._address_set(result, tuple(parent))
            child_ips = self._address_set(result, tuple(child))
            if parent_ips & child_ips:
                verdict = ConsistencyClass.DISJOINT_IP_OVERLAP
            else:
                verdict = ConsistencyClass.DISJOINT
        return ConsistencyReport(
            domain=result.domain,
            iso2=result.iso2,
            verdict=verdict,
            parent_only=tuple(sorted(parent - child)),
            child_only=tuple(sorted(child - parent)),
            has_single_label_ns=single_label,
        )

    def reports(self) -> Dict[DnsName, ConsistencyReport]:
        """Per-domain taxonomy, swept from the columnar store.

        Equivalent to running :meth:`classify` over every responsive
        domain (the fused column pass computed the same verdicts once
        for the whole dataset).
        """
        if self._reports is None:
            columns = self._dataset.columns
            reports: Dict[DnsName, ConsistencyReport] = {}
            by_code = ConsistencyClass.ALL
            # Same direct-__dict__ construction as the delegation
            # sweep: skip the frozen-dataclass per-field setattr.
            new = object.__new__
            for domain, iso2, code, p_only, c_only, single in zip(
                columns.domains,
                columns.iso2,
                columns.consistency_verdict,
                columns.parent_only,
                columns.child_only,
                columns.single_label_ns,
            ):
                if code == UNCLASSIFIED:
                    continue
                report = new(ConsistencyReport)
                report.__dict__.update(
                    domain=domain,
                    iso2=iso2,
                    verdict=by_code[code],
                    parent_only=p_only,
                    child_only=c_only,
                    has_single_label_ns=single != 0,
                )
                reports[domain] = report
            self._reports = reports
        return self._reports

    # ------------------------------------------------------------------
    # Figure 13: taxonomy summary
    # ------------------------------------------------------------------
    def figure13(self) -> Dict[str, float]:
        """Verdict → share of classified responsive domains."""
        column = self._dataset.columns.consistency_verdict
        total = len(column) - column.count(UNCLASSIFIED)
        if not total:
            return {verdict: 0.0 for verdict in ConsistencyClass.ALL}
        return {
            verdict: column.count(code) / total
            for code, verdict in enumerate(ConsistencyClass.ALL)
        }

    def consistency_by_level(self) -> Dict[int, float]:
        """Level → share consistent (paper: 93.5% at level 2, ≤77%
        deeper)."""
        columns = self._dataset.columns
        # level → [classified, consistent]
        by_level: Dict[int, List[int]] = {}
        for level, code in zip(columns.level, columns.consistency_verdict):
            if code == UNCLASSIFIED:
                continue
            counts = by_level.setdefault(level, [0, 0])
            counts[0] += 1
            if code == 0:  # ConsistencyClass.EQUAL
                counts[1] += 1
        return {
            level: consistent / classified
            for level, (classified, consistent) in sorted(by_level.items())
        }

    def figure14_by_country(self, min_domains: int = 3) -> Dict[str, float]:
        """ISO2 → disagreement rate (share of classified domains with
        P ≠ C)."""
        columns = self._dataset.columns
        # ISO2 → [classified, inconsistent]
        grouped: Dict[str, List[int]] = {}
        for iso2, code in zip(columns.iso2, columns.consistency_verdict):
            if code == UNCLASSIFIED:
                continue
            counts = grouped.setdefault(iso2, [0, 0])
            counts[0] += 1
            if code != 0:  # ConsistencyClass.EQUAL
                counts[1] += 1
        return {
            iso2: inconsistent / classified
            for iso2, (classified, inconsistent) in grouped.items()
            if classified >= min_domains
        }

    def single_label_cases(self) -> List[ConsistencyReport]:
        """The dropped-origin typo cases (bare ``ns``-style entries)."""
        return [
            report
            for report in self.reports().values()
            if report.has_single_label_ns
        ]

    # ------------------------------------------------------------------
    # Cross-analysis: inconsistency vs defects, and dangling records
    # ------------------------------------------------------------------
    def share_inconsistent_with_partial_defect(
        self, delegation: DelegationAnalysis
    ) -> float:
        """Of P≠C domains, the share that also carry a partial defect
        (the paper's 40.9%)."""
        defect_reports = delegation.reports()
        inconsistent = [
            r for r in self.reports().values() if not r.consistent
        ]
        if not inconsistent:
            return 0.0
        both = sum(
            1
            for r in inconsistent
            if r.domain in defect_reports
            and defect_reports[r.domain].any_defect
        )
        return both / len(inconsistent)

    def dangling_scan(
        self, delegation: DelegationAnalysis
    ) -> Dict[DnsName, Tuple[Quote, List[DnsName]]]:
        """Registrable nameserver domains among *non-defective*
        inconsistent cases: the parking-service hijack vector.

        Returns {d_ns → (quote, victim domains)}.
        """
        if self._registrar is None:
            raise ValueError("dangling scan needs a registrar")
        defect_reports = delegation.reports()
        found: Dict[DnsName, Tuple[Quote, List[DnsName]]] = {}
        quote_cache: Dict[DnsName, Quote] = {}
        for report in self.reports().values():
            if report.consistent:
                continue
            defect = defect_reports.get(report.domain)
            if defect is not None and defect.any_defect:
                continue  # §IV-C already covers the defective ones
            for hostname in report.parent_only + report.child_only:
                if len(hostname) <= 1:
                    continue
                suffix = self._gov_suffixes.get(report.iso2)
                if suffix is not None and hostname.is_subdomain_of(suffix):
                    continue
                quote = quote_cache.get(hostname)
                if quote is None:
                    quote = self._registrar.check(hostname)
                    quote_cache[hostname] = quote
                if not quote.available:
                    continue
                entry = found.get(quote.domain)
                if entry is None:
                    found[quote.domain] = (quote, [report.domain])
                elif report.domain not in entry[1]:
                    entry[1].append(report.domain)
        return found
