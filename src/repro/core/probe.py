"""The active-measurement pipeline (paper Figure 1).

For each target domain ``d``:

1. **Find the parent's authoritative nameservers** by walking referrals
   from the root toward ``d``.
2. The walk ends when a parent-zone server **returns a referral** naming
   ``d`` itself — that referral's NS set is *P*, the parent's view.  An
   authoritative empty answer (NXDOMAIN/NODATA) means the delegation is
   gone; silence from every server of the enclosing zone means the
   parent itself is unreachable.
3. **Query d's own nameservers** (those named in *P*) for d's NS
   records; authoritative answers contribute *C*, the child's view.
4. **Sweep every IPv4 address** of every nameserver in *P ∪ C* with the
   same NS query, recording each address's outcome — the raw material
   for the defective-delegation and consistency analyses.

A **second round** re-queries domains whose parent listed nameservers
but none answered, shortly after the first (paper §III-B), to absorb
transient failures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..dns.cache import ResolverCache
from ..dns.message import Message, Rcode
from ..dns.name import DnsName, ROOT
from ..dns.rdata import NS, RRType, A
from ..dns.resolver import Resolver
from ..net.address import IPv4Address
from ..net.clock import SimulatedClock
from ..net.network import Network
from .dataset import (
    MeasurementDataset,
    ParentStatus,
    ProbeResult,
    ServerOutcome,
    ServerProbe,
)
from .ethics import RateLimiter

__all__ = ["ActiveProber", "ProbeConfig"]

_MAX_WALK = 16


class ProbeConfig:
    """Tunables for the campaign."""

    def __init__(
        self,
        timeout: float = 3.0,
        retries: int = 1,
        retry_round: bool = True,
        retry_interval_days: float = 1.0,
        rate_limit_qps: Optional[float] = 500.0,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.retries = retries
        self.retry_round = retry_round
        self.retry_interval_days = retry_interval_days
        self.rate_limit_qps = rate_limit_qps


class ActiveProber:
    """Runs the Figure-1 pipeline against a network."""

    def __init__(
        self,
        network: Network,
        root_addresses: Iterable[IPv4Address],
        source: IPv4Address,
        config: Optional[ProbeConfig] = None,
    ) -> None:
        self.config = config if config is not None else ProbeConfig()
        self._network = network
        self._clock = network.clock
        self._cache = ResolverCache(self._clock)
        self._resolver = Resolver(
            network,
            list(root_addresses),
            cache=self._cache,
            source=source,
            timeout=self.config.timeout,
            retries=self.config.retries,
        )
        self._limiter = (
            RateLimiter(self._clock, queries_per_second=self.config.rate_limit_qps)
            if self.config.rate_limit_qps
            else None
        )
        self.queries_sent = 0

    # ------------------------------------------------------------------
    # Low-level query with ethics accounting
    # ------------------------------------------------------------------
    def _query(
        self, address: IPv4Address, qname: DnsName, qtype: str
    ) -> Optional[Message]:
        if self._limiter is not None:
            self._limiter.acquire()
        self.queries_sent += 1
        return self._resolver.query_at(address, qname, qtype)

    # ------------------------------------------------------------------
    # Step 1/2: locate the parent's nameservers, get the referral
    # ------------------------------------------------------------------
    def _walk_to_parent(
        self, domain: DnsName
    ) -> Tuple[str, Tuple[DnsName, ...], Dict[DnsName, Tuple[IPv4Address, ...]]]:
        """Walk referrals from the root until the parent zone answers
        for ``domain``.

        Returns (parent_status, P hostnames, glue map).
        """
        candidates: List[IPv4Address] = list(self._resolver._roots)
        glueless: List[DnsName] = []
        for _ in range(_MAX_WALK):
            response = None
            queue = list(candidates)
            pending = list(glueless)
            while queue or pending:
                if not queue:
                    hostname = pending.pop(0)
                    queue.extend(self._resolver.resolve_address(hostname))
                    continue
                address = queue.pop(0)
                reply = self._query(address, domain, RRType.NS)
                if reply is None:
                    continue
                if reply.rcode in (Rcode.REFUSED, Rcode.SERVFAIL):
                    continue
                if reply.is_upward_referral:
                    continue
                response = reply
                break
            if response is None:
                return ParentStatus.NO_RESPONSE, (), {}

            if response.is_referral:
                target = response.referral_target
                assert target is not None
                delegation = response.authority_rrset(RRType.NS)
                assert delegation is not None
                hostnames = tuple(
                    rdata.nsdname  # type: ignore[union-attr]
                    for rdata in delegation.rdatas
                )
                glue: Dict[DnsName, Tuple[IPv4Address, ...]] = {}
                for hostname in hostnames:
                    addresses = []
                    for glue_set in response.glue_for(hostname):
                        for rdata in glue_set.rdatas:
                            assert isinstance(rdata, A)
                            addresses.append(rdata.address)
                    if addresses:
                        glue[hostname] = tuple(addresses)
                if target == domain:
                    # The parent's answer about our domain: this is P.
                    return ParentStatus.REFERRAL, hostnames, glue
                # An intermediate cut: descend.
                candidates = [a for addrs in glue.values() for a in addrs]
                glueless = [h for h in hostnames if h not in glue]
                continue

            if response.aa:
                answer = response.answer_rrset(RRType.NS)
                if answer is not None:
                    # Parent and child co-hosted: the "parent" server is
                    # also authoritative for the domain and answers
                    # directly instead of referring.
                    hostnames = tuple(
                        rdata.nsdname  # type: ignore[union-attr]
                        for rdata in answer.rdatas
                    )
                    return ParentStatus.ANSWER, hostnames, {}
                return ParentStatus.EMPTY, (), {}

            return ParentStatus.NO_RESPONSE, (), {}
        return ParentStatus.NO_RESPONSE, (), {}

    # ------------------------------------------------------------------
    # Steps 3-4: child view and per-address sweep
    # ------------------------------------------------------------------
    def _resolve_ns_addresses(
        self,
        hostname: DnsName,
        glue: Dict[DnsName, Tuple[IPv4Address, ...]],
    ) -> Tuple[bool, Tuple[IPv4Address, ...]]:
        if hostname in glue:
            return True, glue[hostname]
        if len(hostname) == 1:
            # Single-label nameserver names (the dropped-origin typo)
            # cannot be resolved meaningfully.
            return False, ()
        addresses = self._resolver.resolve_address(hostname)
        return (len(addresses) > 0), addresses

    @staticmethod
    def _classify(response: Optional[Message], domain: DnsName) -> str:
        if response is None:
            return ServerOutcome.TIMEOUT
        if response.rcode == Rcode.REFUSED:
            return ServerOutcome.REFUSED
        if response.rcode == Rcode.SERVFAIL:
            return ServerOutcome.SERVFAIL
        if response.is_upward_referral:
            return ServerOutcome.UPWARD
        if response.rcode == Rcode.NXDOMAIN and response.aa:
            return ServerOutcome.NXDOMAIN
        if response.aa:
            if response.answer_rrset(RRType.NS) is not None:
                return ServerOutcome.ANSWER
            return ServerOutcome.NODATA
        return ServerOutcome.LAME

    def _sweep(
        self,
        result: ProbeResult,
        hostnames: Iterable[DnsName],
        glue: Dict[DnsName, Tuple[IPv4Address, ...]],
    ) -> None:
        """Query every address of every hostname for the domain's NS."""
        for hostname in hostnames:
            probe = result.servers.get(hostname)
            if probe is None:
                resolvable, addresses = self._resolve_ns_addresses(hostname, glue)
                probe = ServerProbe(
                    hostname=hostname,
                    resolvable=resolvable,
                    addresses=addresses,
                )
                result.servers[hostname] = probe
            for address in probe.addresses:
                if address in probe.outcomes and probe.outcomes[
                    address
                ] not in (ServerOutcome.TIMEOUT,):
                    continue
                response = self._query(address, result.domain, RRType.NS)
                outcome = self._classify(response, result.domain)
                probe.outcomes[address] = outcome
                if outcome == ServerOutcome.ANSWER:
                    answer = response.answer_rrset(RRType.NS)  # type: ignore[union-attr]
                    assert answer is not None
                    probe.ns_by_address[address] = tuple(
                        rdata.nsdname  # type: ignore[union-attr]
                        for rdata in answer.rdatas
                    )

    def _collect_child_view(self, result: ProbeResult) -> None:
        """Union of NS sets returned authoritatively by the domain's own
        servers (the C of §IV-D)."""
        seen: Dict[DnsName, None] = {}
        for server in result.servers.values():
            for ns_set in server.ns_by_address.values():
                for hostname in ns_set:
                    seen.setdefault(hostname, None)
        result.child_ns = tuple(seen)

    # ------------------------------------------------------------------
    # Per-domain pipeline
    # ------------------------------------------------------------------
    def probe_domain(self, domain: DnsName, iso2: str = "") -> ProbeResult:
        before = self.queries_sent
        parent_status, parent_ns, glue = self._walk_to_parent(domain)
        result = ProbeResult(
            domain=domain,
            iso2=iso2,
            parent_status=parent_status,
            parent_ns=parent_ns,
        )
        if parent_status in (ParentStatus.REFERRAL, ParentStatus.ANSWER):
            self._sweep(result, parent_ns, glue)
            self._collect_child_view(result)
            new_hostnames = [
                h for h in result.child_ns if h not in result.servers
            ]
            if new_hostnames:
                self._sweep(result, new_hostnames, glue)
                self._collect_child_view(result)
        result.queries_sent = self.queries_sent - before
        return result

    def probe_all(
        self,
        targets: Dict[DnsName, str],
    ) -> MeasurementDataset:
        """Run the campaign over {domain → ISO2}.

        The retry round (paper §III-B) re-runs the sweep for domains
        whose parent listed nameservers but none answered, after a
        short simulated delay.
        """
        results: Dict[DnsName, ProbeResult] = {}
        for domain in sorted(targets):
            results[domain] = self.probe_domain(domain, targets[domain])

        if self.config.retry_round:
            needs_retry = [
                r
                for r in results.values()
                if r.parent_nonempty and not r.responsive
            ]
            if needs_retry:
                self._clock.advance(
                    self.config.retry_interval_days * 86_400
                )
            for result in needs_retry:
                for server in result.servers.values():
                    # Drop timeout verdicts so the sweep re-queries.
                    for address, outcome in list(server.outcomes.items()):
                        if outcome == ServerOutcome.TIMEOUT:
                            del server.outcomes[address]
                self._sweep(result, list(result.servers), {})
                self._collect_child_view(result)
                result.retried = True
        return MeasurementDataset(results)
