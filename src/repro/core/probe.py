"""The active-measurement pipeline (paper Figure 1).

For each target domain ``d``:

1. **Find the parent's authoritative nameservers** by walking referrals
   from the root toward ``d``.
2. The walk ends when a parent-zone server **returns a referral** naming
   ``d`` itself — that referral's NS set is *P*, the parent's view.  An
   authoritative empty answer (NXDOMAIN/NODATA) means the delegation is
   gone; silence from every server of the enclosing zone means the
   parent itself is unreachable.
3. **Query d's own nameservers** (those named in *P*) for d's NS
   records; authoritative answers contribute *C*, the child's view.
4. **Sweep every IPv4 address** of every nameserver in *P ∪ C* with the
   same NS query, recording each address's outcome — the raw material
   for the defective-delegation and consistency analyses.

A **second round** re-queries domains whose parent listed nameservers
but none answered, shortly after the first (paper §III-B), to absorb
transient failures.

Scale architecture
------------------

The paper swept ~147k domains; issuing those queries one blocking
exchange at a time makes the campaign's simulated duration the *sum* of
every round-trip and timeout.  This module instead runs each domain's
pipeline as a cooperatively-scheduled task over the network's
discrete-event scheduler (:mod:`repro.net.events`):

* Up to ``ProbeConfig.max_in_flight`` query series are outstanding at
  once, across domains (overlapping referral walks) and within each
  per-IP sweep, so concurrent waits overlap in virtual time — campaign
  time approaches the max of the overlapping waits, not their sum.
* Issue order is deterministic: tasks are admitted in sorted-domain
  order, resumed in event order, and scanned oldest-first for the next
  issuable query.  The :class:`~repro.core.ethics.RateLimiter` is
  charged per series at issue, and per-destination politeness never
  allows two in-flight exchanges to the same address.
* ``max_in_flight=1`` degenerates to running each task to completion
  before the next starts, reproducing the historical strictly-serial
  prober exchange-for-exchange (same RNG draw order, same dataset).
* A shared :class:`~repro.dns.cache.ZoneCutCache` remembers every
  referral seen, so walks start at the deepest cached cut instead of
  re-descending from the root for all 147k targets.  The cache is
  advisory: the referral naming the domain itself — the measurement —
  is always fetched from the wire.
"""

from __future__ import annotations

import gc
import random
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..dns.cache import ResolverCache, ZoneCutCache
from ..dns.message import Message, Rcode, make_query
from ..dns.name import DnsName
from ..dns.rdata import RRType, A
from ..dns.resolver import Resolver
from ..net.address import IPv4Address
from ..net.events import PendingExchange
from ..net.network import Network
from ..net.resilience import BackoffPolicy, CircuitBreaker, ResilienceCounters
from .dataset import (
    MeasurementDataset,
    ParentStatus,
    ProbeResult,
    ServerOutcome,
    ServerProbe,
)
from .ethics import RateLimiter
from .journal import CampaignJournal, campaign_digest

__all__ = ["ActiveProber", "BREAKER_SKIPPED", "ProbeConfig"]

_MAX_WALK = 16


class _BreakerSkipped:
    """Sentinel response for a query series the circuit breaker refused
    to issue.  Flows through the task machinery in place of a reply so
    the walk treats it as silence and the sweep records an explicit
    ``BREAKER_OPEN`` outcome instead of a fabricated timeout."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<breaker skipped>"


BREAKER_SKIPPED = _BreakerSkipped()

# Task protocol: a probe task is a generator that yields requests to the
# campaign driver and is resumed with the request's result.
#   ("query", address)                   -> resumed with Optional[Message]
#   ("sweep", result, hostnames, glue)   -> resumed with None when drained
_ProbeTask = Generator[Tuple[Any, ...], Any, Any]


class ProbeConfig:
    """Tunables for the campaign."""

    def __init__(
        self,
        timeout: float = 3.0,
        retries: int = 1,
        retry_round: bool = True,
        retry_interval_days: float = 1.0,
        rate_limit_qps: Optional[float] = 500.0,
        max_in_flight: int = 64,
        zone_cut_caching: bool = True,
        backoff: Optional[BackoffPolicy] = None,
        backoff_seed: int = 0,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 900.0,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_interval_days <= 0:
            raise ValueError(
                f"retry_interval_days must be positive, got "
                f"{retry_interval_days}"
            )
        if rate_limit_qps is not None and rate_limit_qps <= 0:
            raise ValueError(
                f"rate_limit_qps must be positive or None, got "
                f"{rate_limit_qps}"
            )
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be at least 1, got {max_in_flight}"
            )
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1 or None, got "
                f"{breaker_threshold}"
            )
        if breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, got {breaker_cooldown}"
            )
        self.timeout = timeout
        self.retries = retries
        self.retry_round = retry_round
        self.retry_interval_days = retry_interval_days
        self.rate_limit_qps = rate_limit_qps
        self.max_in_flight = max_in_flight
        self.zone_cut_caching = zone_cut_caching
        # Resilience knobs; the defaults (no backoff policy, breaker
        # disabled) reproduce the historical engine bit for bit.
        self.backoff = backoff
        self.backoff_seed = backoff_seed
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown

    def identity(self) -> Dict[str, Any]:
        """JSON-able summary for the journal's campaign digest."""
        backoff = self.backoff
        return {
            "timeout": self.timeout,
            "retries": self.retries,
            "retry_round": self.retry_round,
            "retry_interval_days": self.retry_interval_days,
            "rate_limit_qps": self.rate_limit_qps,
            "max_in_flight": self.max_in_flight,
            "zone_cut_caching": self.zone_cut_caching,
            "backoff": None
            if backoff is None
            else [backoff.base, backoff.multiplier, backoff.cap, backoff.jitter],
            "backoff_seed": self.backoff_seed,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown": self.breaker_cooldown,
        }


class _SweepBatch:
    """A per-IP sweep in progress: the lazy cursor over (hostname,
    address) pairs still to be queried, plus the in-flight count.

    Hostnames are resolved on admission (exactly when the serial code
    would have resolved them), and the needs-a-query check runs at
    issue time, so a batch driven with one slot reproduces the serial
    sweep operation-for-operation.
    """

    __slots__ = ("result", "work", "glue", "current", "outstanding", "exhausted")

    def __init__(
        self,
        result: ProbeResult,
        hostnames: Iterable[DnsName],
        glue: Dict[DnsName, Tuple[IPv4Address, ...]],
    ) -> None:
        self.result = result
        self.work: Deque[DnsName] = deque(hostnames)
        self.glue = glue
        self.current: Deque[Tuple[ServerProbe, IPv4Address]] = deque()
        self.outstanding = 0
        self.exhausted = False


class _Task:
    """One admitted probe task and its driver-side bookkeeping."""

    __slots__ = ("index", "gen", "message", "queries", "pending_addr", "batch")

    def __init__(self, index: int, gen: _ProbeTask, message: Message) -> None:
        self.index = index
        self.gen = gen
        self.message = message
        self.queries = 0
        self.pending_addr: Optional[IPv4Address] = None
        self.batch: Optional[_SweepBatch] = None


class _CampaignDriver:
    """Drives probe tasks over the event scheduler.

    One driver instance runs one fleet of tasks to completion.  Its
    loop enforces a strict priority — resume ready tasks, then issue
    the next query from the oldest issuable source, then admit a new
    task, then fire the next event — which makes the interleaving a
    pure function of the task list and the seed.
    """

    def __init__(self, prober: "ActiveProber") -> None:
        self._prober = prober
        self._window = prober.config.max_in_flight
        self._network = prober._network
        self._scheduler = prober._network.events
        self._attempts = 1 + prober.config.retries
        self._timeout = prober.config.timeout
        self._busy: Set[IPv4Address] = set()
        self._ready: Deque[Tuple[_Task, Any]] = deque()
        self._active: List[_Task] = []
        # Tasks with a parked request or live sweep batch that may be
        # able to issue right now, in park/wake order.
        self._issuable: Deque[_Task] = deque()
        # Tasks whose next destination is busy, indexed by that
        # address; woken (re-queued issuable) when it frees.  Busy-set
        # transitions happen only at issue and completion, so no other
        # event can unblock a stalled task.
        self._stalled: Dict[IPv4Address, List[_Task]] = {}
        self._in_flight = 0
        self._finished: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    def run(
        self, tasks: Iterable[Tuple[_ProbeTask, Message]]
    ) -> List[Tuple[Any, int]]:
        """Run every task to completion; returns ``(result, queries)``
        pairs in admission order."""
        admissions: Deque[Tuple[int, _ProbeTask, Message]] = deque(
            (index, gen, message)
            for index, (gen, message) in enumerate(tasks)
        )
        total = len(admissions)
        while True:
            if self._ready:
                task, value = self._ready.popleft()
                self._step(task, value)
                continue
            if self._in_flight < self._window and self._try_issue():
                continue
            if (
                self._in_flight < self._window
                and len(self._active) < self._window
                and admissions
            ):
                index, gen, message = admissions.popleft()
                task = _Task(index, gen, message)
                self._active.append(task)
                self._step(task, None)
                continue
            if self._in_flight > 0:
                self._scheduler.run_next()
                continue
            break
        assert len(self._finished) == total and not self._active
        return [self._finished[index] for index in range(total)]

    # ------------------------------------------------------------------
    def _step(self, task: _Task, value: Any) -> None:
        """Advance a task's generator until it parks on a request."""
        try:
            request = task.gen.send(value)
        except StopIteration as stop:
            self._finished[task.index] = (stop.value, task.queries)
            self._active.remove(task)
            return
        if request[0] == "query":
            task.pending_addr = request[1]
        else:
            task.batch = _SweepBatch(request[1], request[2], request[3])
        self._issuable.append(task)

    def _try_issue(self) -> bool:
        """Issue one query from the oldest wakeable source.

        A source whose next destination already has an exchange in
        flight parks on that address (per-destination politeness) and
        is re-queued when it frees; a drained sweep batch resumes its
        task.
        """
        issuable = self._issuable
        while issuable:
            task = issuable.popleft()
            if task.pending_addr is not None:
                address = task.pending_addr
                if address in self._busy:
                    self._stalled.setdefault(address, []).append(task)
                    continue
                task.pending_addr = None
                self._issue_walk(task, address)
                return True
            batch = task.batch
            if batch is None:
                # The batch's last in-flight query completed it while
                # the task sat queued; the completion already resumed
                # it.
                continue
            unit = self._next_sweep_unit(batch)
            if unit[0] == "issue":
                # Stay at the queue head: the batch keeps issuing until
                # it stalls or drains.
                issuable.appendleft(task)
                self._issue_sweep(task, batch, unit[1], unit[2])
                return True
            if unit[0] == "stall":
                self._stalled.setdefault(unit[1], []).append(task)
                continue
            if batch.outstanding == 0:
                task.batch = None
                self._ready.append((task, None))
                return True
            # Exhausted with queries still in flight: the last
            # completion will resume the task.
        return False

    def _wake_stalled(self, address: IPv4Address) -> None:
        waiting = self._stalled.pop(address, None)
        if waiting:
            self._issuable.extend(waiting)

    def _next_sweep_unit(self, batch: _SweepBatch) -> Tuple[Any, ...]:
        """Advance the batch cursor: ``("issue", probe, address)``,
        ``("stall", address)``, or ``("done",)``.  Hostnames resolve on
        admission, exactly when the serial sweep would resolve them."""
        prober = self._prober
        while True:
            if batch.current:
                probe, address = batch.current[0]
                existing = probe.outcomes.get(address)
                if (
                    existing is not None
                    and existing not in ServerOutcome.SOFT_FAILURES
                ):
                    batch.current.popleft()
                    continue
                if address in self._busy:
                    return "stall", address
                batch.current.popleft()
                return "issue", probe, address
            if not batch.work:
                batch.exhausted = True
                return ("done",)
            hostname = batch.work.popleft()
            probe = batch.result.servers.get(hostname)
            if probe is None:
                resolvable, addresses = prober._resolve_ns_addresses(
                    hostname, batch.glue
                )
                probe = ServerProbe(
                    hostname=hostname,
                    resolvable=resolvable,
                    addresses=addresses,
                )
                batch.result.servers[hostname] = probe
            for address in probe.addresses:
                batch.current.append((probe, address))

    # ------------------------------------------------------------------
    def _issue_series(
        self,
        task: _Task,
        address: IPv4Address,
        on_final: Callable[[Optional[Message]], None],
    ) -> None:
        """Issue one query series (first attempt plus retransmissions)
        and call ``on_final`` with the eventual response (or None).

        A destination whose circuit breaker is open is not queried at
        all: the series completes on the next event tick with the
        :data:`BREAKER_SKIPPED` sentinel (no limiter charge, no query
        counted — nothing was sent)."""
        prober = self._prober
        breaker = prober._breaker
        if breaker is not None and not breaker.allow(address):
            prober.resilience.breaker_skipped_probes += 1
            self._in_flight += 1

            def skip() -> None:
                self._in_flight -= 1
                on_final(BREAKER_SKIPPED)

            self._scheduler.schedule_in(0.0, skip)
            return
        if prober._limiter is not None:
            prober._limiter.acquire()
        prober.queries_sent += 1
        task.queries += 1
        self._in_flight += 1
        self._busy.add(address)
        attempts_left = [self._attempts]

        def retransmit() -> None:
            self._network.send(
                address,
                task.message,
                source=prober._source,
                timeout=self._timeout,
                on_complete=callback,
            )

        def callback(exchange: PendingExchange) -> None:
            attempts_left[0] -= 1
            if exchange.response is None and attempts_left[0] > 0:
                # Retransmit, reusing the already-built query message.
                # With no backoff policy (the default) the retransmit
                # happens at the timeout instant via a direct re-send —
                # no extra scheduler event, bit-identical to the
                # historical engine.
                prober.resilience.retransmits += 1
                delay = prober._backoff_delay(
                    self._attempts - attempts_left[0]
                )
                if delay > 0.0:
                    prober.resilience.backoff_wait_seconds += delay
                    self._scheduler.schedule_in(delay, retransmit)
                else:
                    retransmit()
                return
            if breaker is not None:
                breaker.record_outcome(address, exchange.response is not None)
            self._in_flight -= 1
            self._busy.discard(address)
            self._wake_stalled(address)
            on_final(exchange.response)

        retransmit()

    def _issue_walk(self, task: _Task, address: IPv4Address) -> None:
        def on_final(response: Optional[Message]) -> None:
            self._ready.append((task, response))

        self._issue_series(task, address, on_final)

    def _issue_sweep(
        self,
        task: _Task,
        batch: _SweepBatch,
        probe: ServerProbe,
        address: IPv4Address,
    ) -> None:
        batch.outstanding += 1

        def on_final(response: Optional[Message]) -> None:
            batch.outstanding -= 1
            self._prober._record_sweep_outcome(
                probe, address, batch.result.domain, response
            )
            if batch.exhausted and batch.outstanding == 0 and task.batch is batch:
                task.batch = None
                self._ready.append((task, None))

        self._issue_series(task, address, on_final)


class ActiveProber:
    """Runs the Figure-1 pipeline against a network."""

    def __init__(
        self,
        network: Network,
        root_addresses: Iterable[IPv4Address],
        source: IPv4Address,
        config: Optional[ProbeConfig] = None,
        journal: Optional[CampaignJournal] = None,
    ) -> None:
        self.config = config if config is not None else ProbeConfig()
        self._network = network
        self._clock = network.clock
        self._source = source
        self._journal = journal
        self._backoff_rng = random.Random(self.config.backoff_seed)
        self._breaker = (
            CircuitBreaker(
                self._clock,
                threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
            )
            if self.config.breaker_threshold is not None
            else None
        )
        self.resilience = ResilienceCounters()
        self._cache = ResolverCache(self._clock)
        self._zone_cuts = (
            ZoneCutCache(self._clock)
            if self.config.zone_cut_caching
            else None
        )
        self._resolver = Resolver(
            network,
            list(root_addresses),
            cache=self._cache,
            source=source,
            timeout=self.config.timeout,
            retries=self.config.retries,
            zone_cuts=self._zone_cuts,
            backoff=self.config.backoff,
            backoff_rng=self._backoff_rng,
        )
        self._limiter = (
            RateLimiter(self._clock, queries_per_second=self.config.rate_limit_qps)
            if self.config.rate_limit_qps
            else None
        )
        self.queries_sent = 0
        self.warm_queries = 0

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        """The per-destination circuit breaker (None when disabled)."""
        return self._breaker

    def _backoff_delay(self, completed_attempts: int) -> float:
        """Seconds to wait before the next retransmission (0 = now).

        The backoff RNG is separate from the network RNG, so jittered
        retransmit spacing never perturbs loss/latency draws.
        """
        policy = self.config.backoff
        if policy is None:
            return 0.0
        return policy.delay(completed_attempts, self._backoff_rng)

    @property
    def zone_cuts(self) -> Optional[ZoneCutCache]:
        """The shared delegation cache (None when disabled)."""
        return self._zone_cuts

    # ------------------------------------------------------------------
    # Step 1/2: locate the parent's nameservers, get the referral
    # ------------------------------------------------------------------
    def _walk_to_parent_task(self, domain: DnsName) -> _ProbeTask:
        """Walk referrals until the parent zone answers for ``domain``.

        Starts from the deepest cached zone cut when one is known.  A
        cached cut is trusted for its TTL even when its servers stay
        silent — re-walking from the root would reach the same
        delegation (and hammer the same dead servers, which §III-D's
        politeness forbids); the one exception is a cut that yields no
        queryable address at all, which falls back to a cold walk.
        """
        if self._zone_cuts is not None:
            cut = self._zone_cuts.deepest_enclosing(domain)
            if cut is not None:
                outcome = yield from self._walk_from_task(
                    list(cut.addresses()), list(cut.glueless()), domain
                )
                status, hostnames, glue, issued = outcome
                if status != ParentStatus.NO_RESPONSE or issued > 0:
                    return status, hostnames, glue
                self._zone_cuts.invalidate(cut.name)
        outcome = yield from self._walk_from_task(
            list(self._resolver.roots), [], domain
        )
        return outcome[0], outcome[1], outcome[2]

    def _walk_from_task(
        self,
        candidates: List[IPv4Address],
        glueless: List[DnsName],
        domain: DnsName,
    ) -> Generator[
        Tuple[Any, ...],
        Any,
        Tuple[str, Tuple[DnsName, ...], Dict[DnsName, Tuple[IPv4Address, ...]], int],
    ]:
        issued = 0
        for _ in range(_MAX_WALK):
            response = None
            queue = list(candidates)
            pending = list(glueless)
            while queue or pending:
                if not queue:
                    hostname = pending.pop(0)
                    queue.extend(self._resolver.resolve_address(hostname))
                    continue
                address = queue.pop(0)
                issued += 1
                reply = yield ("query", address)
                if reply is None or reply is BREAKER_SKIPPED:
                    continue
                if reply.rcode in (Rcode.REFUSED, Rcode.SERVFAIL):
                    continue
                if reply.is_upward_referral:
                    continue
                response = reply
                break
            if response is None:
                return ParentStatus.NO_RESPONSE, (), {}, issued

            if response.is_referral:
                target = response.referral_target
                assert target is not None
                delegation = response.authority_rrset(RRType.NS)
                assert delegation is not None
                hostnames = tuple(
                    rdata.nsdname  # type: ignore[union-attr]
                    for rdata in delegation.rdatas
                )
                glue: Dict[DnsName, Tuple[IPv4Address, ...]] = {}
                ttl = delegation.ttl
                for hostname in hostnames:
                    addresses = []
                    for glue_set in response.glue_for(hostname):
                        ttl = min(ttl, glue_set.ttl)
                        for rdata in glue_set.rdatas:
                            assert isinstance(rdata, A)
                            addresses.append(rdata.address)
                    if addresses:
                        glue[hostname] = tuple(addresses)
                if self._zone_cuts is not None:
                    self._zone_cuts.put(target, hostnames, glue, ttl)
                if target == domain:
                    # The parent's answer about our domain: this is P.
                    return ParentStatus.REFERRAL, hostnames, glue, issued
                # An intermediate cut: descend.
                candidates = [a for addrs in glue.values() for a in addrs]
                glueless = [h for h in hostnames if h not in glue]
                continue

            if response.aa:
                answer = response.answer_rrset(RRType.NS)
                if answer is not None:
                    # Parent and child co-hosted: the "parent" server is
                    # also authoritative for the domain and answers
                    # directly instead of referring.
                    hostnames = tuple(
                        rdata.nsdname  # type: ignore[union-attr]
                        for rdata in answer.rdatas
                    )
                    return ParentStatus.ANSWER, hostnames, {}, issued
                return ParentStatus.EMPTY, (), {}, issued

            return ParentStatus.NO_RESPONSE, (), {}, issued
        return ParentStatus.NO_RESPONSE, (), {}, issued

    # ------------------------------------------------------------------
    # Steps 3-4: child view and per-address sweep
    # ------------------------------------------------------------------
    def _resolve_ns_addresses(
        self,
        hostname: DnsName,
        glue: Dict[DnsName, Tuple[IPv4Address, ...]],
    ) -> Tuple[bool, Tuple[IPv4Address, ...]]:
        if hostname in glue:
            return True, glue[hostname]
        if len(hostname) == 1:
            # Single-label nameserver names (the dropped-origin typo)
            # cannot be resolved meaningfully.
            return False, ()
        addresses = self._resolver.resolve_address(hostname)
        return (len(addresses) > 0), addresses

    @staticmethod
    def _classify(response: Optional[Message], domain: DnsName) -> str:
        if response is None:
            return ServerOutcome.TIMEOUT
        if response.rcode == Rcode.REFUSED:
            return ServerOutcome.REFUSED
        if response.rcode == Rcode.SERVFAIL:
            return ServerOutcome.SERVFAIL
        if response.is_upward_referral:
            return ServerOutcome.UPWARD
        if response.rcode == Rcode.NXDOMAIN and response.aa:
            return ServerOutcome.NXDOMAIN
        if response.aa:
            if response.answer_rrset(RRType.NS) is not None:
                return ServerOutcome.ANSWER
            return ServerOutcome.NODATA
        return ServerOutcome.LAME

    def _record_sweep_outcome(
        self,
        probe: ServerProbe,
        address: IPv4Address,
        domain: DnsName,
        response: Optional[Message],
    ) -> None:
        if response is BREAKER_SKIPPED:
            probe.outcomes[address] = ServerOutcome.BREAKER_OPEN
            return
        outcome = self._classify(response, domain)
        probe.outcomes[address] = outcome
        if outcome == ServerOutcome.ANSWER:
            answer = response.answer_rrset(RRType.NS)  # type: ignore[union-attr]
            assert answer is not None
            probe.ns_by_address[address] = tuple(
                rdata.nsdname  # type: ignore[union-attr]
                for rdata in answer.rdatas
            )

    def _collect_child_view(self, result: ProbeResult) -> None:
        """Union of NS sets returned authoritatively by the domain's own
        servers (the C of §IV-D)."""
        seen: Dict[DnsName, None] = {}
        for server in result.servers.values():
            for ns_set in server.ns_by_address.values():
                for hostname in ns_set:
                    seen.setdefault(hostname, None)
        result.child_ns = tuple(seen)

    # ------------------------------------------------------------------
    # Per-domain pipeline (one cooperatively-scheduled task)
    # ------------------------------------------------------------------
    def _domain_task(self, domain: DnsName, iso2: str) -> _ProbeTask:
        walk = yield from self._walk_to_parent_task(domain)
        parent_status, parent_ns, glue = walk
        result = ProbeResult(
            domain=domain,
            iso2=iso2,
            parent_status=parent_status,
            parent_ns=parent_ns,
        )
        if parent_status in (ParentStatus.REFERRAL, ParentStatus.ANSWER):
            yield ("sweep", result, parent_ns, glue)
            self._collect_child_view(result)
            new_hostnames = [
                h for h in result.child_ns if h not in result.servers
            ]
            if new_hostnames:
                yield ("sweep", result, new_hostnames, glue)
                self._collect_child_view(result)
        return result

    # Round-one verdicts the retry round clears before re-querying.
    # TIMEOUT and BREAKER_OPEN are observations of *our* silence;
    # SERVFAIL is the server reporting transient inability (an upstream
    # outage, an expired zone transfer) — all three are
    # transient-failure-shaped, unlike REFUSED/UPWARD/LAME, which are
    # configuration statements a day does not change.  The cleared
    # verdicts are preserved in ``prior_outcomes`` so the analyses can
    # tell two-round silence (confirmed-dead) from one-round silence.
    _RETRY_CLEARED = frozenset(
        {
            ServerOutcome.TIMEOUT,
            ServerOutcome.SERVFAIL,
            ServerOutcome.BREAKER_OPEN,
        }
    )

    def _retry_task(self, result: ProbeResult) -> _ProbeTask:
        for server in result.servers.values():
            # Drop transient-shaped verdicts so the sweep re-queries.
            for address, outcome in list(server.outcomes.items()):
                if outcome in self._RETRY_CLEARED:
                    server.prior_outcomes[address] = outcome
                    del server.outcomes[address]
            if not server.addresses:
                # Round one cached an empty address set (e.g. a glueless
                # NS whose zone was transiently dead).  Re-resolve so
                # the server can recover in round two instead of being
                # forever unresolvable.
                resolvable, addresses = self._resolve_ns_addresses(
                    server.hostname, {}
                )
                if addresses:
                    server.resolvable = resolvable
                    server.addresses = addresses
        yield ("sweep", result, list(result.servers), {})
        self._collect_child_view(result)
        result.retried = True

    # ------------------------------------------------------------------
    # Cache warm-up
    # ------------------------------------------------------------------
    def _warm_task(self, parent: DnsName) -> Generator[Tuple[Any, ...], Any, None]:
        yield from self._walk_to_parent_task(parent)
        return None

    def _warm_zone_cuts(self, order: List[DnsName]) -> None:
        """Deterministically populate and freeze the zone-cut cache.

        Before round one, walk every distinct parent name of the target
        list (sorted, so admission order is canonical) and cache each
        referral seen, then :meth:`~repro.dns.cache.ZoneCutCache.freeze`
        the cache.  After this, every domain's walk starts from a cut
        that is a pure function of the domain and the world — not of
        which domains were probed earlier, in what order, or in which
        process.  That is the property the sharded campaign runner needs
        for the merged dataset digest to be identical for any shard
        count: shard-local warming covers the same ancestor chains
        (every ancestor of a target lies on its own parent's walk), so
        all shard layouts freeze equivalent views of each target's
        enclosing cuts.

        Warm queries honour the rate limiter and are charged to the
        prober's campaign total (they are real politeness-relevant
        traffic, tracked separately in ``warm_queries``) but to no
        domain's ``queries_sent`` — the measurement dataset never sees
        them.
        """
        assert self._zone_cuts is not None
        parents = sorted(
            {domain.parent() for domain in order if len(domain) >= 2}
        )
        if parents:
            driver = _CampaignDriver(self)
            warmed = driver.run(
                [
                    (self._warm_task(parent), make_query(parent, RRType.NS))
                    for parent in parents
                ]
            )
            self.warm_queries += sum(queries for _, queries in warmed)
        self._zone_cuts.freeze()

    # ------------------------------------------------------------------
    # Campaign entry points
    # ------------------------------------------------------------------
    def probe_domain(self, domain: DnsName, iso2: str = "") -> ProbeResult:
        driver = _CampaignDriver(self)
        message = make_query(domain, RRType.NS)
        probed = driver.run([(self._domain_task(domain, iso2), message)])
        result: ProbeResult = probed[0][0]
        result.queries_sent = probed[0][1]
        return result

    def probe_all(
        self,
        targets: Dict[DnsName, str],
    ) -> MeasurementDataset:
        """Run the campaign over {domain → ISO2}.

        The retry round (paper §III-B) re-runs the sweep for domains
        whose parent listed nameservers but none answered, after a
        short simulated delay.

        With a :class:`~repro.core.journal.CampaignJournal` attached,
        every network exchange and completed result is journaled; a
        resumed journal transparently replays the killed prefix before
        going live (see :mod:`repro.core.journal`).
        """
        journal = self._journal
        if journal is not None:
            chaos = self._network.chaos
            journal.begin(
                self._network,
                campaign_digest(
                    targets,
                    self.config.identity(),
                    chaos.name if chaos is not None else None,
                ),
            )
            self._network.journal = journal
        # The campaign event loop allocates almost nothing cyclic —
        # messages, rrsets, and generator frames all die by refcount —
        # so the cycle detector contributes only pause time here (its
        # pauses land on allocation sites inside the loop).  Pause it
        # for the loop, then pay one *young-generation* collection
        # before re-enabling: that scans only objects allocated during
        # the probe (the dataset under construction), not the whole
        # heap with the world in it, and resets the generation
        # counters so the deferred debt cannot cascade into a
        # full-heap pass in whatever phase allocates next (the
        # analyses, typically).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            dataset = self._probe_all_inner(targets, journal)
        except BaseException:
            # Abort path (including the kill-at-event harness): close
            # without a final checkpoint — every line already written
            # was flushed, which is all a killed process would have.
            if journal is not None:
                journal.close()
            raise
        else:
            if journal is not None:
                journal.finish(self._network)
            return dataset
        finally:
            if gc_was_enabled:
                gc.collect(1)
                gc.enable()
            self._network.journal = None

    def _probe_all_inner(
        self,
        targets: Dict[DnsName, str],
        journal: Optional[CampaignJournal],
    ) -> MeasurementDataset:
        order = sorted(targets)
        if self._zone_cuts is not None:
            self._warm_zone_cuts(order)
        driver = _CampaignDriver(self)
        probed = driver.run(
            [
                (
                    self._domain_task(domain, targets[domain]),
                    make_query(domain, RRType.NS),
                )
                for domain in order
            ]
        )
        results: Dict[DnsName, ProbeResult] = {}
        for domain, (result, queries) in zip(order, probed):
            result.queries_sent = queries
            results[domain] = result

        needs_retry: List[ProbeResult] = []
        if self.config.retry_round:
            needs_retry = [
                r
                for r in results.values()
                if r.parent_nonempty and not r.responsive
            ]
        if journal is not None:
            # Round-one results are final unless the retry round will
            # mutate them; those are journaled after the retry.
            retry_set = {id(r) for r in needs_retry}
            for domain in order:
                result = results[domain]
                if id(result) not in retry_set:
                    journal.record_result(self._network, result)
        if needs_retry:
            self._clock.advance(
                self.config.retry_interval_days * 86_400
            )
            retry_driver = _CampaignDriver(self)
            retry_driver.run(
                [
                    (
                        self._retry_task(result),
                        make_query(result.domain, RRType.NS),
                    )
                    for result in needs_retry
                ]
            )
            if journal is not None:
                for result in needs_retry:
                    journal.record_result(self._network, result)
        return MeasurementDataset(results)
