"""Topological-diversity analysis (paper Table I).

For every *responsive* domain with more than one nameserver: how many
distinct IPv4 addresses, /24 prefixes, and autonomous systems do its
nameservers span?  Replication only helps availability when the
replicas do not share fate — same address, same subnet, or same AS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..geo.geoip import GeoIPDatabase
from .dataset import MeasurementDataset, ProbeResult

__all__ = ["DiversityRow", "DiversityAnalysis"]


@dataclass(frozen=True)
class DiversityRow:
    """One Table-I row: a country (or the total)."""

    label: str
    domains: int
    multi_ip_share: float
    multi_prefix_share: float
    multi_asn_share: float


@dataclass(frozen=True)
class DomainDiversity:
    """Raw diversity counts for one domain."""

    ip_count: int
    prefix_count: int
    asn_count: int


class DiversityAnalysis:
    """Table I: address/prefix/AS spread of multi-NS deployments."""

    def __init__(
        self, dataset: MeasurementDataset, geoip: GeoIPDatabase
    ) -> None:
        self._dataset = dataset
        self._geoip = geoip

    # ------------------------------------------------------------------
    def measure_domain(self, result: ProbeResult) -> Optional[DomainDiversity]:
        """Diversity of one domain's resolved nameserver addresses."""
        addresses = result.resolved_addresses()
        if not addresses:
            return None
        prefixes = {address.slash24() for address in addresses}
        asns = set()
        for address in addresses:
            asn = self._geoip.asn_of(address)
            if asn is not None:
                asns.add(asn)
        return DomainDiversity(
            ip_count=len(set(addresses)),
            prefix_count=len(prefixes),
            asn_count=len(asns) if asns else 1,
        )

    def _population(self) -> List[Tuple[ProbeResult, DomainDiversity]]:
        """Responsive domains with >1 listed nameserver, filtered via
        the responsive/ns-count columns before touching any object."""
        columns = self._dataset.columns
        results = self._dataset.results
        population = []
        for domain, flag, count in zip(
            columns.domains, columns.responsive, columns.ns_count
        ):
            if not flag or count <= 1:
                continue
            result = results[domain]
            diversity = self.measure_domain(result)
            if diversity is not None:
                population.append((result, diversity))
        return population

    # ------------------------------------------------------------------
    @staticmethod
    def _row(
        label: str, entries: Sequence[Tuple[ProbeResult, DomainDiversity]]
    ) -> DiversityRow:
        total = len(entries)
        if total == 0:
            return DiversityRow(label, 0, 0.0, 0.0, 0.0)
        return DiversityRow(
            label=label,
            domains=total,
            multi_ip_share=sum(1 for _, d in entries if d.ip_count > 1) / total,
            multi_prefix_share=sum(1 for _, d in entries if d.prefix_count > 1)
            / total,
            multi_asn_share=sum(1 for _, d in entries if d.asn_count > 1) / total,
        )

    def table1(self, top_countries: int = 10) -> List[DiversityRow]:
        """The total row plus the top-N countries by population."""
        population = self._population()
        rows = [self._row("Total", population)]
        by_country: Dict[str, List[Tuple[ProbeResult, DomainDiversity]]] = {}
        for entry in population:
            by_country.setdefault(entry[0].iso2, []).append(entry)
        ranked = sorted(
            by_country.items(), key=lambda item: -len(item[1])
        )[:top_countries]
        rows.extend(self._row(iso2, entries) for iso2, entries in ranked)
        return rows

    def share_multi_prefix_by_level(self) -> Dict[int, float]:
        """Multi-/24 share by DNS-hierarchy level (the paper's 87.1% at
        level 2 vs <80% below)."""
        by_level: Dict[int, List[Tuple[ProbeResult, DomainDiversity]]] = {}
        for result, diversity in self._population():
            by_level.setdefault(result.level, []).append((result, diversity))
        return {
            level: sum(1 for _, d in entries if d.prefix_count > 1) / len(entries)
            for level, entries in sorted(by_level.items())
            if entries
        }

    def single_ip_multi_ns(self) -> List[ProbeResult]:
        """Multi-NS domains whose nameservers all share one address —
        the curiosity the paper traces largely to one d_gov."""
        return [
            result
            for result, diversity in self._population()
            if diversity.ip_count == 1
        ]
