"""Provider identification (paper §IV-B method).

Mapping a nameserver hostname to the organization operating it takes
three tricks, all implemented here exactly as the paper describes:

1. **Regex patterns** for providers with generative naming — Amazon's
   ``ns-<n>.awsdns-<m>.<tld>`` spans hundreds of base domains;
2. **Base-domain matching** for everyone else (``*.domaincontrol.com``
   is GoDaddy, with co.uk/com.br-style two-label suffixes handled);
3. **SOA MNAME/RNAME matching** for deployments whose NS names are
   vanity-branded but whose SOA still betrays the operator.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..dns.name import DnsName
from ..dns.rdata import SOA
from ..worldgen.providers import PROVIDERS, ProviderSpec

__all__ = ["ProviderMatcher"]

_AWS_PATTERN = re.compile(
    r"^ns-\d+\.awsdns-\d+\.(com|net|org|co\.uk)$"
)
_AZURE_PATTERN = re.compile(
    r"^ns\d+-\d+\.azure-dns\.(com|net|org|info)$"
)

_TWO_LABEL_SUFFIXES = frozenset({"co.uk", "com.br", "net.br"})


def base_domain_of(hostname: DnsName) -> Optional[DnsName]:
    """Registered-ish base domain of a nameserver hostname."""
    labels = hostname.labels
    if len(labels) < 2:
        return None
    tail2 = ".".join(labels[-2:])
    if tail2 in _TWO_LABEL_SUFFIXES:
        if len(labels) < 3:
            return None
        return DnsName(labels[-3:])
    return DnsName(labels[-2:])


class ProviderMatcher:
    """hostname/SOA → provider key."""

    def __init__(
        self,
        providers: Sequence[ProviderSpec] = PROVIDERS,
        use_patterns: bool = True,
        use_soa: bool = True,
    ) -> None:
        """``use_patterns``/``use_soa`` exist for the §IV-B ablation:
        disabling the generative-name regexes (Amazon/Azure) or the SOA
        fallback shows how much of the identification each trick buys."""
        self._providers = tuple(providers)
        self._use_patterns = use_patterns
        self._use_soa = use_soa
        self._by_base: Dict[str, str] = {}
        for spec in providers:
            for domain in spec.ns_domains:
                self._by_base[domain.lower().rstrip(".")] = spec.key
        self._soa_rnames: Dict[str, str] = {
            spec.soa_rname.lower().rstrip("."): spec.key
            for spec in providers
            if spec.soa_rname
        }

    # ------------------------------------------------------------------
    def match_hostname(self, hostname: DnsName) -> Optional[str]:
        """Provider key for one nameserver hostname, or None."""
        text = str(hostname).rstrip(".")
        if self._use_patterns:
            if _AWS_PATTERN.match(text):
                return "amazon"
            if _AZURE_PATTERN.match(text):
                return "azure"
        base = base_domain_of(hostname)
        if base is None:
            return None
        base_text = str(base).rstrip(".")
        direct = self._by_base.get(base_text)
        if direct is not None:
            return direct
        # Amazon/Azure base domains themselves (awsdns-12.net etc.).
        if self._use_patterns and re.match(
            r"^awsdns-\d+\.(com|net|org)$", base_text
        ):
            return "amazon"
        return None

    def match_soa(self, soa: SOA) -> Optional[str]:
        """Provider via SOA MNAME (treated as a hostname) or RNAME."""
        if not self._use_soa:
            return None
        provider = self.match_hostname(soa.mname)
        if provider is not None:
            return provider
        rname_text = str(soa.rname).rstrip(".")
        for suffix, key in self._soa_rnames.items():
            if rname_text.endswith(suffix):
                return key
        return None

    # ------------------------------------------------------------------
    def providers_of(
        self,
        hostnames: Iterable[DnsName],
        soa: Optional[SOA] = None,
    ) -> Tuple[str, ...]:
        """Distinct provider keys across a domain's nameserver set."""
        found: Dict[str, None] = {}
        for hostname in hostnames:
            key = self.match_hostname(hostname)
            if key is not None:
                found.setdefault(key, None)
        if not found and soa is not None:
            key = self.match_soa(soa)
            if key is not None:
                found.setdefault(key, None)
        return tuple(found)

    def is_single_provider(
        self, hostnames: Sequence[DnsName]
    ) -> Optional[str]:
        """The provider, when *every* nameserver belongs to exactly one
        catalog provider (the d_1P condition); else None."""
        keys = set()
        for hostname in hostnames:
            key = self.match_hostname(hostname)
            if key is None:
                return None
            keys.add(key)
        if len(keys) == 1:
            return next(iter(keys))
        return None
