"""Deterministic checkpoint/resume for probe campaigns.

A production-scale campaign (the paper's 147k domains; the ROADMAP's
north star) cannot afford to restart from scratch when the measurement
process dies mid-run.  This module makes a campaign *resumable* without
sacrificing the engine's core promise — the resumed run produces a
dataset **byte-identical** to an uninterrupted one.

Design: replay, not restoration
-------------------------------
The campaign is a deterministic function of (world, config, RNG
stream).  Rather than snapshotting the full engine state (schedulers,
generator frames, half-walked delegations — unserializable), the
journal records just enough to *re-execute* the killed prefix exactly:

* one **send entry** per network exchange, recording its outcome kind
  (``a`` answered / ``r`` chaos-refused / ``t`` silence) and delay —
  these substitute for the loss/latency RNG draws during replay, so
  replay consumes no randomness;
* periodic **checkpoints** carrying the cumulative send count plus the
  network and chaos RNG states (``random.Random.getstate()``), so the
  first post-replay live send draws from exactly the stream position
  the killed run had reached;
* **result entries** for completed :class:`ProbeResult`s — not needed
  for correctness (replay re-derives them) but they make partial
  datasets recoverable without a world and give the resilience report
  its replay statistics.

On resume the campaign runs against a freshly regenerated *identical*
world (same seed, scale, and chaos profile — enforced by a campaign
digest in the journal header).  Replay is fast (no simulated waiting is
re-experienced as wall time, and host lookups are pure) and the
crossover from replay to live recording is invisible to the engine.

File format
-----------
Append-only JSONL; every line is flushed when written, so a ``kill -9``
loses at most one torn trailing line (ignored on parse).  Lines are
objects tagged by ``"k"``:

``{"k":"h","version":1,"campaign":<sha256>}``
    Header; the digest covers targets, probe config, and chaos profile.
``{"k":"s","o":"a"|"r"|"t","d":<delay seconds>}``
    One network send, in issue order.
``{"k":"d", ...serialized ProbeResult...}``
    One completed domain.
``{"k":"c","sends":<n>,"clock":<now>,"rng":[...],"chaos":[...]|null}``
    Checkpoint after the ``n``-th send.  Resume truncates the file at
    the last checkpoint and replays exactly ``n`` sends.

Sharded campaigns
-----------------
A sharded campaign (``repro campaign --shards K``) cannot share one
journal file: K workers appending concurrently would interleave send
entries non-deterministically.  Instead the journal path holds a
one-line JSON **manifest**

``{"k":"m","version":1,"shards":K,"campaign":<sha256>,"files":[...]}``

and each worker keeps an ordinary single-process journal at
``<path>.shard<i>`` covering exactly its shard's targets.  Resume is
per shard: workers whose journal completed replay it fully; killed
workers resume from their own last checkpoint.  Opening a manifest as a
plain journal (or resuming with a different K) raises a clear error
instead of silently corrupting state.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..dns.name import DnsName, parse_cached
from ..net.address import IPv4Address
from ..net.network import Network
from .dataset import MeasurementDataset, ProbeResult, ServerProbe

__all__ = [
    "CampaignJournal",
    "JOURNAL_VERSION",
    "campaign_digest",
    "dataset_digest",
    "result_from_dict",
    "result_to_dict",
    "read_shard_manifest",
    "shard_journal_path",
    "write_shard_manifest",
]

JOURNAL_VERSION = 1

# Checkpoint cadence, in sends.  Checkpoints also follow every completed
# result, so this bounds replay-tail length between domain completions.
CHECKPOINT_EVERY = 256


# ----------------------------------------------------------------------
# Serialization helpers
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """``random.Random.getstate()`` tuples → JSON arrays (recursive)."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def _unjson(value: Any) -> Any:
    """JSON arrays → the tuples ``random.Random.setstate()`` expects."""
    if isinstance(value, list):
        return tuple(_unjson(item) for item in value)
    return value


def result_to_dict(result: ProbeResult) -> Dict[str, Any]:
    """Serialize one :class:`ProbeResult` exactly (order-preserving)."""
    return {
        "domain": str(result.domain),
        "iso2": result.iso2,
        "parent_status": result.parent_status,
        "parent_ns": [str(h) for h in result.parent_ns],
        "child_ns": [str(h) for h in result.child_ns],
        "queries_sent": result.queries_sent,
        "retried": result.retried,
        "servers": [
            {
                "hostname": str(server.hostname),
                "resolvable": server.resolvable,
                "addresses": [str(a) for a in server.addresses],
                "outcomes": {
                    str(a): o for a, o in sorted(server.outcomes.items())
                },
                "ns_by_address": {
                    str(a): [str(n) for n in ns]
                    for a, ns in sorted(server.ns_by_address.items())
                },
                "prior_outcomes": {
                    str(a): o for a, o in sorted(server.prior_outcomes.items())
                },
            }
            for server in result.servers.values()
        ],
    }


def result_from_dict(data: Mapping[str, Any]) -> ProbeResult:
    """Inverse of :func:`result_to_dict`.

    Names go through :func:`~repro.dns.name.parse_cached` — the sharded
    merge path deserializes thousands of results whose hostnames repeat
    heavily (co-hosted NS infrastructure), so parsing each distinct
    spelling once matters.
    """
    servers: Dict[DnsName, ServerProbe] = {}
    for entry in data["servers"]:
        hostname = parse_cached(entry["hostname"])
        servers[hostname] = ServerProbe(
            hostname=hostname,
            resolvable=entry["resolvable"],
            addresses=tuple(
                IPv4Address.parse(a) for a in entry["addresses"]
            ),
            outcomes={
                IPv4Address.parse(a): o
                for a, o in entry["outcomes"].items()
            },
            ns_by_address={
                IPv4Address.parse(a): tuple(parse_cached(n) for n in ns)
                for a, ns in entry["ns_by_address"].items()
            },
            prior_outcomes={
                IPv4Address.parse(a): o
                for a, o in entry["prior_outcomes"].items()
            },
        )
    return ProbeResult(
        domain=parse_cached(data["domain"]),
        iso2=data["iso2"],
        parent_status=data["parent_status"],
        parent_ns=tuple(parse_cached(h) for h in data["parent_ns"]),
        child_ns=tuple(parse_cached(h) for h in data["child_ns"]),
        servers=servers,
        queries_sent=data["queries_sent"],
        retried=data["retried"],
    )


def dataset_digest(dataset: MeasurementDataset) -> str:
    """sha256 over the canonical serialization of every result.

    This is the byte-identity yardstick the resume contract (and the CI
    chaos-smoke job) is stated in.
    """
    blob = json.dumps(
        [result_to_dict(r) for _, r in sorted(dataset.results.items())],
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def campaign_digest(
    targets: Mapping[DnsName, str],
    knobs: Mapping[str, Any],
    chaos_name: Optional[str],
) -> str:
    """Identity of a campaign: targets + probe config + chaos profile.

    Stored in the journal header; resuming under a different identity
    would replay sends against a world that draws differently, so it is
    rejected up front.
    """
    blob = json.dumps(
        {
            "targets": sorted(
                (str(domain), iso2) for domain, iso2 in targets.items()
            ),
            "config": {key: knobs[key] for key in sorted(knobs)},
            "chaos": chaos_name,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Shard manifests
# ----------------------------------------------------------------------
def shard_journal_path(path: str, shard_index: int) -> str:
    """The per-worker journal file for one shard of a manifest at ``path``."""
    return f"{path}.shard{shard_index}"


def write_shard_manifest(path: str, shards: int, campaign: str) -> List[str]:
    """Write (or validate an existing) manifest; return per-shard paths.

    Re-invoking with the same (shards, campaign) — the resume path — is
    a no-op validation; any mismatch raises before a worker touches its
    journal.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    files = [shard_journal_path(path, index) for index in range(shards)]
    manifest = {
        "k": "m",
        "version": JOURNAL_VERSION,
        "shards": shards,
        "campaign": campaign,
        "files": files,
    }
    try:
        existing = read_shard_manifest(path)
    except FileNotFoundError:
        existing = None
    if existing is not None:
        if existing["shards"] != shards:
            raise ValueError(
                f"{path}: manifest was recorded with --shards "
                f"{existing['shards']}, cannot resume with --shards "
                f"{shards} — shard membership (and each worker's journal) "
                f"is tied to the original count"
            )
        if existing["campaign"] != campaign:
            raise ValueError(
                f"{path}: manifest campaign mismatch — resume needs the "
                f"same world seed/scale, probe config, and chaos profile"
            )
        return list(existing["files"])
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(manifest, separators=(",", ":")) + "\n")
    return files


def read_shard_manifest(path: str) -> Dict[str, Any]:
    """Parse a shard manifest; raises ValueError on a plain journal."""
    with open(path, "rb") as fh:
        first = fh.readline()
    try:
        entry = json.loads(first)
    except ValueError:
        raise ValueError(f"{path}: not a shard manifest (unparseable)")
    if not isinstance(entry, dict) or entry.get("k") != "m":
        raise ValueError(
            f"{path}: not a shard manifest — this looks like a "
            f"single-process campaign journal (resume it without --shards)"
        )
    if entry.get("version") != JOURNAL_VERSION:
        raise ValueError(
            f"{path}: manifest version {entry.get('version')!r} "
            f"!= supported {JOURNAL_VERSION}"
        )
    return entry


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
class CampaignJournal:
    """Append-only JSONL journal; also the network's replay tap.

    Use :meth:`create` for a fresh recording and :meth:`resume` to
    continue a killed campaign.  The prober calls :meth:`begin` /
    :meth:`record_result` / :meth:`finish`; the network calls
    :meth:`replay_send` / :meth:`record_send` per exchange.
    """

    def __init__(self, path: str, resuming: bool) -> None:
        self.path = path
        self.resuming = resuming
        self._fh: Optional[Any] = None
        self._live = False
        self._header: Optional[Dict[str, Any]] = None
        self._checkpoint: Optional[Dict[str, Any]] = None
        self._truncate_at = 0
        self._replay: List[Tuple[str, float]] = []
        self._cursor = 0
        self._sends = 0
        self._seen: set = set()
        self._result_dicts: Dict[str, Dict[str, Any]] = {}
        self.replayed_sends = 0
        self.recovered_results = 0
        if resuming:
            self._parse()

    @classmethod
    def create(cls, path: str) -> "CampaignJournal":
        """A fresh journal; ``begin`` truncates/creates the file."""
        return cls(path, resuming=False)

    @classmethod
    def resume(cls, path: str) -> "CampaignJournal":
        """Parse an existing journal and prepare to replay it."""
        return cls(path, resuming=True)

    # ------------------------------------------------------------------
    # Parsing (resume)
    # ------------------------------------------------------------------
    def _parse(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        header: Optional[Dict[str, Any]] = None
        checkpoint: Optional[Dict[str, Any]] = None
        checkpoint_end = 0
        checkpoint_sends_seen = 0
        checkpoint_seen: set = set()
        sends: List[Tuple[str, float]] = []
        results: Dict[str, Dict[str, Any]] = {}
        pos = 0
        while pos < len(data):
            newline = data.find(b"\n", pos)
            if newline == -1:
                break  # torn trailing line: the kill landed mid-write
            line = data[pos:newline]
            try:
                entry = json.loads(line)
            except ValueError:
                break  # torn line that happens to contain a newline
            if not isinstance(entry, dict) or "k" not in entry:
                break
            kind = entry["k"]
            if kind == "m":
                raise ValueError(
                    f"{self.path}: this is a sharded-campaign manifest "
                    f"(recorded with --shards {entry.get('shards')}), not a "
                    f"single-process journal — resume it with --shards "
                    f"{entry.get('shards')}"
                )
            if kind == "h":
                header = entry
                self._truncate_at = newline + 1
            elif kind == "s":
                sends.append((entry["o"], entry["d"]))
            elif kind == "d":
                results[entry["domain"]] = entry
            elif kind == "c":
                checkpoint = entry
                checkpoint_end = newline + 1
                checkpoint_sends_seen = len(sends)
                checkpoint_seen = set(results)
            pos = newline + 1
        if header is None:
            raise ValueError(f"{self.path}: not a campaign journal (no header)")
        if header.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"{self.path}: journal version {header.get('version')!r} "
                f"!= supported {JOURNAL_VERSION}"
            )
        self._header = header
        if checkpoint is not None:
            if checkpoint["sends"] != checkpoint_sends_seen:
                raise ValueError(
                    f"{self.path}: corrupt journal — checkpoint claims "
                    f"{checkpoint['sends']} sends, file holds "
                    f"{checkpoint_sends_seen}"
                )
            self._checkpoint = checkpoint
            self._truncate_at = checkpoint_end
            self._replay = sends[: checkpoint["sends"]]
            self._seen = checkpoint_seen
        # else: no checkpoint was reached before the kill — truncate to
        # just past the header and re-run the campaign from scratch
        # (the initial RNG state needs no restoring).
        self._sends = len(self._replay)
        self._result_dicts = {
            domain: results[domain]
            for domain in results
            if domain in self._seen
        }
        self.recovered_results = len(self._seen)

    # ------------------------------------------------------------------
    # Campaign lifecycle (called by the prober)
    # ------------------------------------------------------------------
    def begin(self, network: Network, digest: str) -> None:
        if self.resuming:
            assert self._header is not None
            recorded = self._header.get("campaign")
            if recorded != digest:
                raise ValueError(
                    f"journal campaign mismatch: {self.path} was recorded "
                    f"for campaign {recorded}, but this campaign is "
                    f"{digest} — resume needs the same world seed/scale, "
                    f"probe config, and chaos profile"
                )
            with open(self.path, "r+b") as fh:
                fh.truncate(self._truncate_at)
            self._fh = open(self.path, "a", encoding="utf-8")
            if self._cursor >= len(self._replay):
                self._takeover(network)
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._live = True
            self._append(
                {"k": "h", "version": JOURNAL_VERSION, "campaign": digest}
            )

    def record_result(self, network: Network, result: ProbeResult) -> None:
        """Append a completed domain (idempotent across resumes)."""
        domain = str(result.domain)
        if domain in self._seen:
            return
        self._seen.add(domain)
        entry = {"k": "d"}
        entry.update(result_to_dict(result))
        self._append(entry)
        if self._live:
            # Mid-replay appends must not checkpoint: a checkpoint's
            # send count has to match the send entries preceding it.
            self._write_checkpoint(network)

    def finish(self, network: Network) -> None:
        """Final checkpoint + close (clean campaign completion)."""
        if self._fh is None:
            return
        if self._live:
            self._write_checkpoint(network)
        self.close()

    def close(self) -> None:
        """Close without checkpointing (the abort path)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # Network tap (called by Network.send)
    # ------------------------------------------------------------------
    def replay_send(self, network: Network) -> Optional[Tuple[str, float]]:
        if self._cursor >= len(self._replay):
            return None
        entry = self._replay[self._cursor]
        self._cursor += 1
        self.replayed_sends += 1
        if self._cursor >= len(self._replay):
            # Replay exhausted: restore the RNG streams to where the
            # killed run's checkpoint left them, then go live.
            self._takeover(network)
        return entry

    def record_send(self, network: Network, kind: str, delay: float) -> None:
        self._sends += 1
        self._append({"k": "s", "o": kind, "d": delay})
        if self._sends % CHECKPOINT_EVERY == 0:
            self._write_checkpoint(network)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _takeover(self, network: Network) -> None:
        if self._live:
            return
        self._live = True
        checkpoint = self._checkpoint
        if checkpoint is None:
            return
        network.restore_rng_state(_unjson(checkpoint["rng"]))
        chaos_state = checkpoint.get("chaos")
        if chaos_state is not None:
            if network.chaos is None:
                raise ValueError(
                    "journal checkpoint carries chaos RNG state but the "
                    "resumed network has no fault schedule installed"
                )
            network.chaos.restore_rng_state(_unjson(chaos_state))

    def _write_checkpoint(self, network: Network) -> None:
        chaos = network.chaos
        self._append(
            {
                "k": "c",
                "sends": self._sends,
                "clock": network.clock.now,
                "rng": _jsonable(network.rng_state()),
                "chaos": _jsonable(chaos.rng_state())
                if chaos is not None
                else None,
            }
        )

    def _append(self, entry: Dict[str, Any]) -> None:
        assert self._fh is not None, "journal used before begin()"
        self._fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
        # Flush per line: a killed process must lose at most the line it
        # was writing, or resume could replay a prefix that diverges
        # from what actually happened.
        self._fh.flush()

    # ------------------------------------------------------------------
    # Recovered data access
    # ------------------------------------------------------------------
    def load_results(self) -> List[ProbeResult]:
        """The completed results recovered from the journal file."""
        return [result_from_dict(d) for d in self._result_dicts.values()]
