"""Third-party provider dependency (paper §IV-B, Tables II & III).

Longitudinal provider-usage statistics over the PDNS record set: how
many domains each provider serves per year, how many rely on a single
provider (``d_1P``), and how geographically widespread each provider's
government footprint is under the paper's 32-group scheme (22 UN
sub-regions + the 10 record-heaviest countries as their own groups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..dns.errors import NameError_
from ..dns.name import DnsName
from ..geo.regions import PAPER_GROUP_COUNT, paper_groups
from .provider_id import ProviderMatcher
from .replication import PdnsReplicationAnalysis, YearState

__all__ = ["ProviderUsage", "ProviderReach", "CentralizationAnalysis"]

# The Table II fixed panel: providers common among popular domains.
MAJOR_PROVIDERS: Tuple[str, ...] = (
    "amazon",
    "azure",
    "cloudflare",
    "dnspod",
    "dnsmadeeasy",
    "dyn",
    "godaddy",
    "ultradns",
)


@dataclass(frozen=True)
class ProviderUsage:
    """One provider's usage in one year (a Table II cell group)."""

    provider: str
    year: int
    domains: int
    domain_share: float
    single_provider_domains: int  # d_1P using this provider
    single_provider_share: float
    groups: int  # paper groups (of 32) with ≥1 domain using it
    group_share: float
    countries: int


@dataclass(frozen=True)
class ProviderReach:
    """A Table III row: provider ranked by country reach."""

    provider: str
    year: int
    domains: int
    domain_share: float
    groups: int
    group_share: float
    countries: int


class CentralizationAnalysis:
    """Provider usage/centralization over PDNS year states."""

    def __init__(
        self,
        replication: PdnsReplicationAnalysis,
        matcher: Optional[ProviderMatcher] = None,
        top_country_count: int = 10,
    ) -> None:
        self._replication = replication
        self._matcher = matcher if matcher is not None else ProviderMatcher()
        self._top_country_count = top_country_count
        self._groups: Optional[Mapping[str, str]] = None
        self._soa_parse_failures = 0
        # Per-year caches: Table II/III and the single-provider share
        # all sweep the same year, so the provider matching and NS-name
        # parsing are done once per year, not once per query.
        self._maps_cache: Dict[
            int, Tuple[Dict[DnsName, Tuple[str, ...]], Dict[DnsName, YearState]]
        ] = {}
        self._hostnames_cache: Dict[
            int, Dict[DnsName, Tuple[DnsName, ...]]
        ] = {}

    @property
    def soa_parse_failures(self) -> int:
        """PDNS SOA rows skipped because their rdata would not parse.

        Monotonically increasing across analysis calls; a non-zero value
        means the provider fallback (§IV-B) ran on incomplete evidence
        for some domains, which callers should surface rather than hide.
        """
        return self._soa_parse_failures

    # ------------------------------------------------------------------
    def _grouping(self) -> Mapping[str, str]:
        """ISO2 → paper group, with the top record-heavy countries
        promoted to their own groups."""
        if self._groups is None:
            totals: Dict[str, int] = {}
            for states in self._replication.year_states().values():
                for state in states.values():
                    totals[state.iso2] = totals.get(state.iso2, 0) + 1
            top = sorted(totals, key=lambda iso: -totals[iso])[
                : self._top_country_count
            ]
            self._groups = paper_groups(top)
        return self._groups

    def _soa_for(self, domain: DnsName, year: int):
        """Parse the domain's PDNS SOA row active in ``year`` (if any)."""
        from ..dns.rdata import RRType, SOA
        from ..net.clock import year_bounds

        start, end = year_bounds(year)
        for record in self._replication.pdns.lookup(domain, RRType.SOA):
            if not record.active_during(start, end):
                continue
            tokens = record.rdata.split()
            if len(tokens) < 2:
                self._soa_parse_failures += 1
                continue
            try:
                return SOA(
                    mname=DnsName.parse(tokens[0]),
                    rname=DnsName.parse(tokens[1]),
                )
            except (NameError_, ValueError, IndexError):
                # Malformed MNAME/RNAME in a PDNS row: skip this record
                # but keep the skip visible via soa_parse_failures.
                self._soa_parse_failures += 1
                continue
        return None

    def _year_hostnames(self, year: int) -> Dict[DnsName, Tuple[DnsName, ...]]:
        """Parsed per-domain NS hostnames for one year (cached)."""
        cached = self._hostnames_cache.get(year)
        if cached is None:
            cached = {
                domain: tuple(DnsName.parse(h) for h in state.hostnames)
                for domain, state in self._replication.year_states()
                .get(year, {})
                .items()
            }
            self._hostnames_cache[year] = cached
        return cached

    def _year_provider_maps(
        self, year: int
    ) -> Tuple[Dict[DnsName, Tuple[str, ...]], Dict[DnsName, YearState]]:
        """Per-domain provider sets for one year (cached per year).

        Hostname matching first; when the NS names are vanity-branded
        and reveal nothing, fall back to the SOA MNAME/RNAME — the
        paper's §IV-B combination.
        """
        cached = self._maps_cache.get(year)
        if cached is None:
            states = self._replication.year_states().get(year, {})
            hostnames_by_domain = self._year_hostnames(year)
            providers: Dict[DnsName, Tuple[str, ...]] = {}
            for domain in states:
                matched = self._matcher.providers_of(hostnames_by_domain[domain])
                if not matched:
                    soa = self._soa_for(domain, year)
                    if soa is not None:
                        matched = self._matcher.providers_of((), soa=soa)
                providers[domain] = matched
            cached = (providers, states)
            self._maps_cache[year] = cached
        return cached

    # ------------------------------------------------------------------
    def usage(self, provider: str, year: int) -> ProviderUsage:
        providers, states = self._year_provider_maps(year)
        hostnames_by_domain = self._year_hostnames(year)
        total = len(states)
        using = [d for d, keys in providers.items() if provider in keys]
        single = [
            d
            for d in using
            if self._matcher.is_single_provider(hostnames_by_domain[d])
            == provider
        ]
        grouping = self._grouping()
        countries = {states[d].iso2 for d in using}
        groups = {grouping[iso2] for iso2 in countries if iso2 in grouping}
        return ProviderUsage(
            provider=provider,
            year=year,
            domains=len(using),
            domain_share=len(using) / total if total else 0.0,
            single_provider_domains=len(single),
            single_provider_share=len(single) / total if total else 0.0,
            groups=len(groups),
            group_share=len(groups) / PAPER_GROUP_COUNT,
            countries=len(countries),
        )

    def table2(
        self,
        years: Sequence[int] = (2011, 2020),
        providers: Sequence[str] = MAJOR_PROVIDERS,
    ) -> Dict[str, Dict[int, ProviderUsage]]:
        """{provider → {year → usage}} for the fixed major panel."""
        return {
            provider: {year: self.usage(provider, year) for year in years}
            for provider in sorted(providers)
        }

    # ------------------------------------------------------------------
    def top_providers(
        self, year: int, limit: int = 10
    ) -> List[ProviderReach]:
        """Table III: providers ranked by country reach in one year."""
        providers, states = self._year_provider_maps(year)
        total = len(states)
        grouping = self._grouping()
        by_provider: Dict[str, Set[DnsName]] = {}
        for domain, keys in providers.items():
            for key in keys:
                by_provider.setdefault(key, set()).add(domain)
        rows: List[ProviderReach] = []
        for key, domains in by_provider.items():
            countries = {states[d].iso2 for d in domains}
            groups = {grouping[iso2] for iso2 in countries if iso2 in grouping}
            rows.append(
                ProviderReach(
                    provider=key,
                    year=year,
                    domains=len(domains),
                    domain_share=len(domains) / total if total else 0.0,
                    groups=len(groups),
                    group_share=len(groups) / PAPER_GROUP_COUNT,
                    countries=len(countries),
                )
            )
        rows.sort(key=lambda row: (-row.countries, -row.domains))
        return rows[:limit]

    def max_reach_growth(
        self, start_year: int = 2011, end_year: int = 2020
    ) -> Tuple[int, int]:
        """Countries served by the most widespread provider at the two
        endpoints (the paper's 52 → 85, +60%)."""
        start = self.top_providers(start_year, limit=1)
        end = self.top_providers(end_year, limit=1)
        return (
            start[0].countries if start else 0,
            end[0].countries if end else 0,
        )

    # ------------------------------------------------------------------
    def single_provider_share(self, year: int) -> float:
        """Share of domains relying on exactly one catalog provider."""
        providers, states = self._year_provider_maps(year)
        if not states:
            return 0.0
        hostnames_by_domain = self._year_hostnames(year)
        singles = 0
        for domain in states:
            if (
                self._matcher.is_single_provider(hostnames_by_domain[domain])
                is not None
            ):
                singles += 1
        return singles / len(states)
