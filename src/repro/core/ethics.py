"""Measurement-ethics provisions (paper §III-D).

The paper's campaign ran from a single static address with an
identifying PTR record, rate-limited its queries, and avoided
re-querying dead parents.  The same provisions are first-class here: a
token-bucket :class:`RateLimiter` wired to the simulated clock (so
rate-limiting costs simulated time, exactly like real politeness), and
a helper to publish the research PTR record.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns.name import DnsName
from ..dns.rdata import PTR
from ..dns.zone import Zone
from ..net.address import IPv4Address
from ..net.clock import SimulatedClock

__all__ = ["RateLimiter", "research_ptr_zone"]


@dataclass
class RateLimiter:
    """Token bucket over simulated time.

    ``acquire`` blocks (advances the clock) when the probe is running
    hot, charging the campaign wall-clock for politeness the same way a
    ``sleep`` would in the real pipeline.
    """

    clock: SimulatedClock
    queries_per_second: float = 200.0
    burst: float = 50.0

    def __post_init__(self) -> None:
        if self.queries_per_second <= 0 or self.burst < 1:
            raise ValueError("rate parameters must be positive")
        self._tokens = self.burst
        self._last = self.clock.now
        self.waited_seconds = 0.0

    def acquire(self) -> None:
        """Take one token, advancing the clock if the bucket is dry."""
        now = self.clock.now
        self._tokens = min(
            self.burst,
            self._tokens + (now - self._last) * self.queries_per_second,
        )
        self._last = now
        if self._tokens < 1.0:
            wait = (1.0 - self._tokens) / self.queries_per_second
            self.clock.advance(wait)
            self.waited_seconds += wait
            self._tokens = 1.0
            self._last = self.clock.now
        self._tokens -= 1.0


def research_ptr_zone(
    source: IPv4Address, contact_host: str = "dnsresearch.example.edu"
) -> Zone:
    """The reverse zone identifying the probe host as a research
    machine, as §III-D describes."""
    octets = str(source).split(".")
    origin = DnsName.parse(
        f"{octets[2]}.{octets[1]}.{octets[0]}.in-addr.arpa."
    )
    zone = Zone(origin)
    record_name = DnsName.parse(f"{octets[3]}.{origin}")
    zone.add_records(record_name, PTR(DnsName.parse(contact_host)))
    return zone
