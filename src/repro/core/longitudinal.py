"""The versioned longitudinal dataset: per-epoch deltas over one base.

A longitudinal campaign probes the full target universe once (epoch 0)
and then, each epoch, re-probes only the domains whose footprint
plausibly changed.  This module is the storage layer for that loop:

* **Carry-forward.**  A domain not re-probed in epoch *k* keeps its
  most recent :class:`~repro.core.dataset.ProbeResult` object — and its
  *epoch attribution* (:meth:`LongitudinalDataset.origin_epoch`).  A
  re-probe whose result serializes identically to the stored one is
  *not* a new version: the delta records only genuine changes, so
  attribution survives flagged-but-unchanged re-probes.
* **Copy-on-write columns.**  ``columns_at(k)`` starts from epoch
  *k-1*'s :class:`~repro.core.dataset.DatasetColumns`, rebuilds only
  the changed rows with the same fused pass a full build uses, and
  splices them in at the fixed admission indices — the target universe
  is fixed, so admission order never moves.
* **Digest chain.**  Every epoch is stamped with the full-dataset
  digest of its materialization *and* a chain digest binding the delta
  history, so any replay divergence is pinpointed to its first epoch.

The headline contract — property-tested across seeds × epochs × shard
counts — is that ``as_of(k)``'s digest is byte-identical to a
from-scratch full campaign against epoch *k*'s world.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dns.name import DnsName
from .dataset import DatasetColumns, MeasurementDataset, ProbeResult
from .journal import dataset_digest, result_to_dict

__all__ = ["EpochDelta", "LongitudinalDataset"]


def _delta_blob_digest(changed: Dict[DnsName, ProbeResult]) -> str:
    blob = json.dumps(
        [result_to_dict(r) for _, r in sorted(changed.items())],
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class EpochDelta:
    """What changed in one epoch (changed rows only)."""

    epoch: int
    changed: Dict[DnsName, ProbeResult]
    probed: Tuple[DnsName, ...]
    responsive_changed: Tuple[DnsName, ...]
    epoch_digest: str
    chain_digest: str

    @property
    def changed_domains(self) -> Tuple[DnsName, ...]:
        return tuple(sorted(self.changed))


class LongitudinalDataset:
    """A base campaign plus an append-only chain of epoch deltas."""

    def __init__(self, base: MeasurementDataset) -> None:
        self._base_results: Dict[DnsName, ProbeResult] = dict(base.results)
        self._latest: Dict[DnsName, ProbeResult] = dict(base.results)
        self._origin: Dict[DnsName, int] = {d: 0 for d in base.results}
        self._deltas: List[EpochDelta] = []
        base_digest = dataset_digest(base)
        self._digests: List[str] = [base_digest]
        self._chain: List[str] = [
            hashlib.sha256(f"epoch 0:{base_digest}".encode()).hexdigest()
        ]
        # Admission index per domain: fixed universe, fixed order.
        self._index: Dict[DnsName, int] = {
            d: i for i, d in enumerate(base.results)
        }
        self._columns_cache: Dict[int, DatasetColumns] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> int:
        """Number of epochs stored (epoch indices run 0..epochs-1)."""
        return len(self._deltas) + 1

    @property
    def deltas(self) -> Tuple[EpochDelta, ...]:
        return tuple(self._deltas)

    def delta(self, epoch: int) -> EpochDelta:
        if not 1 <= epoch < self.epochs:
            raise IndexError(f"no delta for epoch {epoch}")
        return self._deltas[epoch - 1]

    def latest(self, domain: DnsName) -> ProbeResult:
        """The carried-forward result for a domain."""
        return self._latest[domain]

    def origin_epoch(self, domain: DnsName) -> int:
        """The epoch whose probe produced the domain's current row."""
        return self._origin[domain]

    def epoch_digest(self, epoch: int) -> str:
        if not 0 <= epoch < self.epochs:
            raise IndexError(f"no digest for epoch {epoch}")
        return self._digests[epoch]

    def chain_digest(self, epoch: int) -> str:
        if not 0 <= epoch < self.epochs:
            raise IndexError(f"no chain digest for epoch {epoch}")
        return self._chain[epoch]

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append_epoch(
        self,
        probed: Dict[DnsName, ProbeResult],
    ) -> EpochDelta:
        """Fold one epoch's re-probe results into the chain.

        ``probed`` holds every result measured this epoch; rows whose
        serialization matches the carried-forward version are dropped
        (no new version, attribution preserved).  Domains outside the
        base universe are a pipeline bug and raise — the longitudinal
        contract is a fixed universe.
        """
        epoch = self.epochs
        changed: Dict[DnsName, ProbeResult] = {}
        responsive_changed: List[DnsName] = []
        for domain in sorted(probed):
            previous = self._latest.get(domain)
            if previous is None:
                raise ValueError(
                    f"epoch {epoch}: domain {domain} is not in the base "
                    "universe; longitudinal campaigns have a fixed "
                    "target list"
                )
            result = probed[domain]
            if result_to_dict(result) == result_to_dict(previous):
                continue
            changed[domain] = result
            if result.responsive != previous.responsive:
                responsive_changed.append(domain)
            self._latest[domain] = result
            self._origin[domain] = epoch

        epoch_digest = dataset_digest(MeasurementDataset(self._latest))
        chain = hashlib.sha256(
            f"{self._chain[-1]}:epoch {epoch}:{epoch_digest}:"
            f"{_delta_blob_digest(changed)}".encode()
        ).hexdigest()
        delta = EpochDelta(
            epoch=epoch,
            changed=changed,
            probed=tuple(sorted(probed)),
            responsive_changed=tuple(responsive_changed),
            epoch_digest=epoch_digest,
            chain_digest=chain,
        )
        self._deltas.append(delta)
        self._digests.append(epoch_digest)
        self._chain.append(chain)
        return delta

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def results_at(self, epoch: int) -> Dict[DnsName, ProbeResult]:
        """Epoch *k*'s full result mapping, in base admission order."""
        if not 0 <= epoch < self.epochs:
            raise IndexError(f"no epoch {epoch} (have 0..{self.epochs - 1})")
        results = dict(self._base_results)
        for delta in self._deltas[:epoch]:
            for domain, result in delta.changed.items():
                results[domain] = result  # replace: key order is stable
        return results

    def as_of(self, epoch: int) -> MeasurementDataset:
        """Materialize epoch *k* as a standalone dataset.

        The returned dataset's digest is byte-identical to a full
        campaign run against epoch *k*'s world, and its columns are the
        copy-on-write splice from :meth:`columns_at`.
        """
        dataset = MeasurementDataset(self.results_at(epoch))
        dataset._columns = self.columns_at(epoch)
        return dataset

    def columns_at(self, epoch: int) -> DatasetColumns:
        """Epoch *k*'s columnar store, built copy-on-write.

        Epoch 0 builds the full columns once; every later epoch copies
        epoch *k-1*'s columns and splices in freshly-built rows for the
        delta's changed domains only.
        """
        cached = self._columns_cache.get(epoch)
        if cached is not None:
            return cached
        if not 0 <= epoch < self.epochs:
            raise IndexError(f"no epoch {epoch} (have 0..{self.epochs - 1})")
        if epoch == 0:
            columns = DatasetColumns.build(self.results_at(0))
        else:
            columns = self._splice(
                self.columns_at(epoch - 1), self._deltas[epoch - 1]
            )
        self._columns_cache[epoch] = columns
        return columns

    def _splice(
        self, previous: DatasetColumns, delta: EpochDelta
    ) -> DatasetColumns:
        results = self.results_at(delta.epoch)
        if not delta.changed:
            # Same rows, same order: share the immutable columns but
            # point the lazy ns_count path at this epoch's results.
            return DatasetColumns(
                domains=previous.domains,
                iso2=previous.iso2,
                level=previous.level,
                parent_status=previous.parent_status,
                responsive=previous.responsive,
                retried=previous.retried,
                results=results,
                persistence=previous.persistence,
                defect_verdict=previous.defect_verdict,
                defect_provisional=previous.defect_provisional,
                defective_ns=previous.defective_ns,
                defective_in_parent=previous.defective_in_parent,
                consistency_verdict=previous.consistency_verdict,
                single_label_ns=previous.single_label_ns,
                parent_only=previous.parent_only,
                child_only=previous.child_only,
            )

        # Build mini-columns for just the changed rows, in admission
        # order, with the exact fused pass a full build uses.
        order = sorted(delta.changed, key=self._index.__getitem__)
        mini = DatasetColumns.build({d: delta.changed[d] for d in order})

        level = bytearray(previous.level)
        parent_status = bytearray(previous.parent_status)
        responsive = bytearray(previous.responsive)
        retried = bytearray(previous.retried)
        persistence = bytearray(previous.persistence)
        defect_verdict = bytearray(previous.defect_verdict)
        defect_provisional = bytearray(previous.defect_provisional)
        consistency_verdict = bytearray(previous.consistency_verdict)
        single_label_ns = bytearray(previous.single_label_ns)
        iso2 = list(previous.iso2)
        defective_ns = list(previous.defective_ns)
        defective_in_parent = list(previous.defective_in_parent)
        parent_only = list(previous.parent_only)
        child_only = list(previous.child_only)

        for j, domain in enumerate(order):
            i = self._index[domain]
            level[i] = mini.level[j]
            parent_status[i] = mini.parent_status[j]
            responsive[i] = mini.responsive[j]
            retried[i] = mini.retried[j]
            persistence[i] = mini.persistence[j]
            defect_verdict[i] = mini.defect_verdict[j]
            defect_provisional[i] = mini.defect_provisional[j]
            consistency_verdict[i] = mini.consistency_verdict[j]
            single_label_ns[i] = mini.single_label_ns[j]
            iso2[i] = mini.iso2[j]
            defective_ns[i] = mini.defective_ns[j]
            defective_in_parent[i] = mini.defective_in_parent[j]
            parent_only[i] = mini.parent_only[j]
            child_only[i] = mini.child_only[j]

        return DatasetColumns(
            domains=previous.domains,
            iso2=tuple(iso2),
            level=bytes(level),
            parent_status=bytes(parent_status),
            responsive=bytes(responsive),
            retried=bytes(retried),
            results=results,
            persistence=bytes(persistence),
            defect_verdict=bytes(defect_verdict),
            defect_provisional=bytes(defect_provisional),
            defective_ns=tuple(defective_ns),
            defective_in_parent=tuple(defective_in_parent),
            consistency_verdict=bytes(consistency_verdict),
            single_label_ns=bytes(single_label_ns),
            parent_only=tuple(parent_only),
            child_only=tuple(child_only),
        )
