"""Campaign ethics audit (paper §III-D, verified rather than asserted).

The paper's ethics section makes operational claims: queries were rate
limited, the probe host was identifiable, dead parents were not
re-queried, and no zone reconstruction was attempted.  This module
audits a finished campaign against those claims using the network's
traffic counters — the reproduction equivalent of an IRB artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.address import IPv4Address
from ..net.network import Network
from .dataset import MeasurementDataset, ParentStatus

__all__ = ["CampaignAudit", "audit_campaign"]


@dataclass
class CampaignAudit:
    """Findings of the post-campaign ethics review."""

    total_queries: int
    distinct_destinations: int
    busiest_destination: Optional[IPv4Address]
    busiest_count: int
    mean_queries_per_destination: float
    effective_qps: Optional[float]
    # Domains whose dead parents were re-queried anyway would show up
    # here (the paper explicitly avoids that).
    requeried_dead_parents: List = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


def audit_campaign(
    network: Network,
    dataset: MeasurementDataset,
    campaign_seconds: Optional[float] = None,
    max_qps: Optional[float] = None,
    max_per_destination_share: float = 0.25,
    registry_addresses: Tuple[IPv4Address, ...] = (),
) -> CampaignAudit:
    """Review a campaign's traffic against §III-D provisions.

    Parameters
    ----------
    campaign_seconds:
        Simulated duration of the campaign; with ``max_qps`` it bounds
        the average rate.
    max_per_destination_share:
        No single server should have absorbed more than this share of
        all probe traffic (load-spreading check).
    registry_addresses:
        Root/TLD servers to exempt from the share bound — they
        legitimately see the referral step of every uncached lookup.
    """
    stats = network.stats
    per_destination = stats.per_destination
    total = stats.queries_sent
    exempt = set(registry_addresses)
    busiest: Tuple[Optional[IPv4Address], int] = (None, 0)
    for destination, count in per_destination.items():
        if destination in exempt:
            continue
        if count > busiest[1]:
            busiest = (destination, count)

    audit = CampaignAudit(
        total_queries=total,
        distinct_destinations=len(per_destination),
        busiest_destination=busiest[0],
        busiest_count=busiest[1],
        mean_queries_per_destination=(
            total / len(per_destination) if per_destination else 0.0
        ),
        effective_qps=(
            total / campaign_seconds
            if campaign_seconds and campaign_seconds > 0
            else None
        ),
    )

    if max_qps is not None and audit.effective_qps is not None:
        if audit.effective_qps > max_qps:
            audit.violations.append(
                f"average rate {audit.effective_qps:.0f} qps exceeds the "
                f"declared limit of {max_qps:.0f}"
            )

    if total and busiest[1] / total > max_per_destination_share:
        audit.violations.append(
            f"destination {busiest[0]} absorbed "
            f"{busiest[1] / total:.0%} of all queries"
        )

    # Dead parents must not have been hammered: domains whose parents
    # never answered should show at most the initial walk's attempts.
    for result in dataset:
        if result.parent_status != ParentStatus.NO_RESPONSE:
            continue
        if result.retried:
            audit.requeried_dead_parents.append(result.domain)
    if audit.requeried_dead_parents:
        audit.violations.append(
            f"{len(audit.requeried_dead_parents)} domains with dead "
            "parents were re-queried in the retry round"
        )

    return audit
