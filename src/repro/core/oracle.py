"""Differential verification of the active pipeline against zonelint.

The static analyzer (:mod:`repro.zonelint`) computes, per domain, what
a lossless measurement must observe.  This module runs the *actual*
campaign — serial or concurrent, with or without a chaos profile —
and asserts per-domain agreement between the active pipeline's
DelegationAnalysis/ConsistencyAnalysis verdicts and that static truth.

Every disagreement is classified, never dropped:

``cohosted-parent``
    The parent walk landed on a server that co-hosts the child zone on
    one side and not the other (e.g. chaos silenced the server the
    other side hit first), flipping REFERRAL↔ANSWER while the NS data
    stays consistent.  A known, benign observation asymmetry.
``prober-bug`` / ``worldgen-bug``
    Explicitly allowlisted known defects (the allowlist ships empty;
    the mechanism exists so a triaged disagreement is visible, not
    silenced).
``chaos-masked``
    A chaos profile was installed and the active run observed strictly
    *less* than the static truth — silence, refusals, lost referrals.
    Legitimately unobservable, not a bug.
``transient-loss``
    No chaos, but the network's intrinsic loss (flaky-server share)
    explains a strictly-weaker observation.
``unexplained``
    Everything else — the oracle's failure signal.  In particular, the
    active run observing *more* than the static truth (a server
    answering where the graph says nothing is attached) is always
    unexplained: chaos can only subtract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dns.name import DnsName
from ..zonelint.analyzer import GroundTruth, ZoneLinter
from .consistency import ConsistencyAnalysis
from .dataset import (
    MeasurementDataset,
    ParentStatus,
    ProbeResult,
    ServerOutcome,
)
from .delegation import DelegationAnalysis

__all__ = [
    "AllowlistEntry",
    "Disagreement",
    "OracleReport",
    "DifferentialOracle",
    "ORACLE_MODES",
    "run_oracle_mode",
]

ORACLE_MODES = ("serial", "concurrent", "chaos", "sharded")

_COHOSTED = "cohosted-parent"
_CHAOS_MASKED = "chaos-masked"
_TRANSIENT = "transient-loss"
_UNEXPLAINED = "unexplained"

# Outcomes a chaos layer can manufacture: silence (timeout / an opened
# breaker downstream of it) and rate-limit refusals.  SERVFAIL, upward
# referrals, and lame answers are configuration statements chaos never
# injects, so they must match the static truth exactly.
_SOFT_CHAOS = frozenset(
    {
        ServerOutcome.TIMEOUT,
        ServerOutcome.BREAKER_OPEN,
        ServerOutcome.REFUSED,
    }
)
# Intrinsic packet loss can only produce silence.
_SOFT_PLAIN = frozenset(
    {ServerOutcome.TIMEOUT, ServerOutcome.BREAKER_OPEN}
)


@dataclass(frozen=True)
class AllowlistEntry:
    """A triaged known disagreement: classified, not silenced."""

    domain: str
    kind: str  # "prober-bug" or "worldgen-bug"
    reason: str


@dataclass(frozen=True)
class Disagreement:
    """One domain where active and static views differ."""

    domain: DnsName
    iso2: str
    fields: Tuple[str, ...]
    classification: str
    detail: str


@dataclass
class OracleReport:
    """Outcome of one oracle run (one campaign mode)."""

    mode: str
    chaos_profile: Optional[str]
    total: int
    agreed: int
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def unexplained(self) -> List[Disagreement]:
        return [
            d
            for d in self.disagreements
            if d.classification == _UNEXPLAINED
        ]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for disagreement in self.disagreements:
            out[disagreement.classification] = (
                out.get(disagreement.classification, 0) + 1
            )
        return out


class DifferentialOracle:
    """Compares one campaign's dataset against a static truth table."""

    def __init__(
        self,
        world,
        table: Dict[DnsName, GroundTruth],
        allowlist: Sequence[AllowlistEntry] = (),
    ) -> None:
        self._world = world
        self._table = table
        self._allowlist = {entry.domain: entry for entry in allowlist}

    # ------------------------------------------------------------------
    def compare(
        self,
        dataset: MeasurementDataset,
        mode: str,
        chaos_profile: Optional[str] = None,
    ) -> OracleReport:
        delegation = DelegationAnalysis(dataset).reports()
        consistency = ConsistencyAnalysis(dataset).reports()
        report = OracleReport(
            mode=mode, chaos_profile=chaos_profile, total=0, agreed=0
        )
        for domain in sorted(result.domain for result in dataset):
            report.total += 1
            active = dataset[domain]
            static = self._table.get(domain)
            if static is None:
                report.disagreements.append(
                    Disagreement(
                        domain,
                        active.iso2,
                        ("static-missing",),
                        _UNEXPLAINED,
                        "no static ground truth for probed domain",
                    )
                )
                continue
            fields = self._diff(
                static,
                active,
                delegation.get(domain),
                consistency.get(domain),
            )
            if not fields:
                report.agreed += 1
                continue
            classification, detail = self._classify(
                static, active, fields, chaos_profile is not None
            )
            report.disagreements.append(
                Disagreement(
                    domain,
                    active.iso2,
                    tuple(fields),
                    classification,
                    detail,
                )
            )
        return report

    # ------------------------------------------------------------------
    def _diff(
        self,
        static: GroundTruth,
        active: ProbeResult,
        defect_report,
        consistency_report,
    ) -> List[str]:
        fields: List[str] = []
        if active.parent_status != static.parent_status:
            fields.append("parent_status")
        if set(active.parent_ns) != set(static.parent_ns):
            fields.append("parent_ns")
        if active.responsive != static.responsive:
            fields.append("responsive")
        if set(active.child_ns) != set(static.child_ns):
            fields.append("child_ns")
        active_verdict = (
            defect_report.verdict if defect_report is not None else None
        )
        if active_verdict != static.delegation_verdict:
            fields.append("delegation_verdict")
        active_defective = (
            sorted(defect_report.defective_ns)
            if defect_report is not None
            else []
        )
        if active_defective != sorted(static.defective_ns):
            fields.append("defective_ns")
        active_consistency = (
            consistency_report.verdict
            if consistency_report is not None
            else None
        )
        if active_consistency != static.consistency_verdict:
            fields.append("consistency_verdict")
        elif consistency_report is not None and (
            consistency_report.parent_only != static.parent_only
            or consistency_report.child_only != static.child_only
        ):
            fields.append("consistency_sets")
        return fields

    # ------------------------------------------------------------------
    def _classify(
        self,
        static: GroundTruth,
        active: ProbeResult,
        fields: List[str],
        chaos: bool,
    ) -> Tuple[str, str]:
        entry = self._allowlist.get(str(static.domain))
        if entry is not None:
            return entry.kind, entry.reason

        if self._cohost_flip(static, active, fields):
            return _COHOSTED, (
                f"parent walk flipped {static.parent_status}→"
                f"{active.parent_status} with a consistent NS view"
            )

        if chaos and self._loss_shaped(static, active, _SOFT_CHAOS):
            return _CHAOS_MASKED, (
                "active run observed strictly less than static truth "
                "under an installed chaos profile"
            )
        if not chaos and self._loss_shaped(static, active, _SOFT_PLAIN):
            if self._lossy_addresses(static, active):
                return _TRANSIENT, (
                    "strictly-weaker observation on addresses with "
                    "intrinsic packet loss"
                )
        return _UNEXPLAINED, (
            "fields: " + ", ".join(fields)
        )

    def _cohost_flip(
        self,
        static: GroundTruth,
        active: ProbeResult,
        fields: List[str],
    ) -> bool:
        """REFERRAL↔ANSWER flip where both views carry consistent NS
        data: a different (co-hosting) parent server answered first."""
        if "parent_status" not in fields:
            return False
        both = {static.parent_status, active.parent_status}
        if not both <= {ParentStatus.REFERRAL, ParentStatus.ANSWER}:
            return False
        if active.parent_status == ParentStatus.ANSWER:
            expected = set(static.child_ns)
        else:
            expected = set(static.parent_ns)
        if set(active.parent_ns) != expected:
            return False
        allowed = {
            "parent_status",
            "parent_ns",
            "consistency_verdict",
            "consistency_sets",
        }
        return set(fields) <= allowed

    def _loss_shaped(
        self,
        static: GroundTruth,
        active: ProbeResult,
        soft: frozenset,
    ) -> bool:
        """True when every divergence is the active run observing
        *less*: silenced walks, masked answers, failed resolutions.
        Observing more than the static truth is never loss-shaped."""
        if (
            active.parent_status == ParentStatus.NO_RESPONSE
            and static.parent_status != ParentStatus.NO_RESPONSE
        ):
            return True  # the whole walk was silenced
        if active.parent_status != static.parent_status:
            return False
        if set(active.parent_ns) != set(static.parent_ns):
            return False
        if not set(active.child_ns) <= set(static.child_ns):
            return False
        if active.responsive and not static.responsive:
            return False
        for hostname, server in active.servers.items():
            reference = static.servers.get(hostname)
            if reference is None:
                return False
            if server.resolvable and not reference.resolvable:
                return False
            if not server.resolvable and reference.resolvable:
                continue  # resolution itself was masked
            for address, outcome in server.outcomes.items():
                expected = reference.outcomes.get(address)
                if outcome == expected:
                    continue
                if outcome in soft:
                    continue
                return False
        return True

    def _lossy_addresses(
        self, static: GroundTruth, active: ProbeResult
    ) -> bool:
        """Does any address involved on either side drop packets?"""
        network = self._world.network
        involved: Dict = {}
        for address in static.all_addresses():
            involved.setdefault(address, None)
        for address in static.walk_addresses:
            involved.setdefault(address, None)
        for server in active.servers.values():
            for address in server.addresses:
                involved.setdefault(address, None)
        return any(
            network.effective_loss_rate(address) > 0.0
            for address in involved
        )


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
def run_oracle_mode(
    seed: int,
    scale: float,
    mode: str,
    chaos_profile: str = "mixed",
    allowlist: Sequence[AllowlistEntry] = (),
) -> OracleReport:
    """Build a fresh world, run one campaign mode, compare.

    ``serial`` probes one query at a time with zone-cut caching off
    (the reference pipeline), ``concurrent`` uses the default engine,
    ``chaos`` is the concurrent engine under ``chaos_profile``, and
    ``sharded`` runs the default engine across two worker processes —
    certifying that the parallel path observes the same world the
    static analyzer derives, not just the in-process engines.  The
    static truth is computed before chaos is installed — the graph
    bypasses the delivery path, but truth-before-fault keeps the
    methodology honest.
    """
    from ..dns.message import Rcode, make_response
    from ..net.chaos import build_profile
    from ..worldgen.config import WorldConfig
    from ..worldgen.generator import WorldGenerator
    from .probe import ProbeConfig
    from .study import GovernmentDnsStudy

    if mode not in ORACLE_MODES:
        raise ValueError(f"unknown oracle mode: {mode!r}")
    world = WorldGenerator(WorldConfig(seed=seed, scale=scale)).generate()
    if mode == "serial":
        config = ProbeConfig(max_in_flight=1, zone_cut_caching=False)
    else:
        config = ProbeConfig()
    study = GovernmentDnsStudy(
        world,
        probe_config=config,
        shards=2 if mode == "sharded" else None,
    )
    # Seed selection issues its own queries; compute targets (and the
    # static truth) before chaos lands, mirroring the campaign CLI.
    targets = study.targets()
    linter = ZoneLinter.for_world(world)
    table = linter.analyze_all(targets)
    profile: Optional[str] = None
    if mode == "chaos":
        profile = chaos_profile
        world.network.chaos = build_profile(
            chaos_profile,
            sorted(world.network.addresses()),
            seed=seed,
            start=world.clock.now,
            refusal_factory=lambda query: make_response(
                query, rcode=Rcode.REFUSED
            ),
        )
    dataset = study.dataset()
    oracle = DifferentialOracle(world, table, allowlist=allowlist)
    return oracle.compare(dataset, mode, chaos_profile=profile)
