"""End-to-end study orchestration.

:class:`GovernmentDnsStudy` wires the whole methodology together the
way §III describes it: seed selection → PDNS expansion → active
probing → the §IV analyses.  It is also the object the benchmark
harness drives, one table/figure at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dns.name import DnsName
from ..dns.resolver import Resolver
from ..dns.cache import ResolverCache
from ..worldgen.generator import World
from .centralization import CentralizationAnalysis
from .consistency import ConsistencyAnalysis
from .dataset import MeasurementDataset
from .delegation import DelegationAnalysis
from .diversity import DiversityAnalysis
from .probe import ActiveProber, ProbeConfig
from .provider_id import ProviderMatcher
from .replication import ActiveReplicationAnalysis, PdnsReplicationAnalysis
from .seeds import Seed, SeedSelector
from .targets import TargetListBuilder

__all__ = ["GovernmentDnsStudy"]


@dataclass
class GovernmentDnsStudy:
    """One full measurement campaign over a (synthetic) world.

    Stages are lazy and cached: ``seeds()`` runs §III-A once,
    ``dataset()`` runs the probe campaign once, and each analysis
    accessor builds on those.
    """

    world: World
    probe_config: Optional[ProbeConfig] = None
    # Number of worker processes for the active campaign (None = run
    # in-process).  Deliberately NOT part of ProbeConfig.identity():
    # the dataset is shard-count-invariant, so the campaign digest —
    # and any journal recorded under it — must not change with K.
    shards: Optional[int] = None
    _seeds: Optional[Dict[str, Seed]] = field(default=None, repr=False)
    _targets: Optional[Dict[DnsName, str]] = field(default=None, repr=False)
    _dataset: Optional[MeasurementDataset] = field(default=None, repr=False)
    _pdns_replication: Optional[PdnsReplicationAnalysis] = field(
        default=None, repr=False
    )

    # ------------------------------------------------------------------
    # Stage 1: seed selection (§III-A)
    # ------------------------------------------------------------------
    def seeds(self) -> Dict[str, Seed]:
        if self._seeds is None:
            # Seed verification uses the same §III-B query policy as the
            # probe campaign (3 s timeout, one retransmission).
            config = (
                self.probe_config
                if self.probe_config is not None
                else ProbeConfig()
            )
            resolver = Resolver(
                self.world.network,
                self.world.root_addresses,
                cache=ResolverCache(self.world.clock),
                source=self.world.probe_source,
                timeout=config.timeout,
                retries=config.retries,
            )
            selector = SeedSelector(
                resolver,
                self.world.tld_registry,
                self.world.whois,
                self.world.archive,
            )
            self._seeds = selector.select_all(self.world.knowledge_base)
        return self._seeds

    # ------------------------------------------------------------------
    # Stage 2: target expansion (§III-B)
    # ------------------------------------------------------------------
    def targets(self) -> Dict[DnsName, str]:
        if self._targets is None:
            builder = TargetListBuilder(self.world.pdns)
            self._targets = builder.build(self.seeds())
        return self._targets

    # ------------------------------------------------------------------
    # Stage 3: active campaign (§III-B, Figure 1)
    # ------------------------------------------------------------------
    def dataset(self) -> MeasurementDataset:
        if self._dataset is None:
            if self.shards is not None:
                from .shard import ProcessCampaignRunner, government_suffixes

                runner = ProcessCampaignRunner(
                    self.world,
                    self.targets(),
                    self.probe_config
                    if self.probe_config is not None
                    else ProbeConfig(),
                    shards=self.shards,
                    suffixes=government_suffixes(self.seeds().values()),
                )
                self._dataset = runner.run()
            else:
                prober = ActiveProber(
                    self.world.network,
                    self.world.root_addresses,
                    self.world.probe_source,
                    config=self.probe_config,
                )
                self._dataset = prober.probe_all(self.targets())
        return self._dataset

    # ------------------------------------------------------------------
    # Stage 4: analyses (§IV)
    # ------------------------------------------------------------------
    def pdns_replication(self) -> PdnsReplicationAnalysis:
        if self._pdns_replication is None:
            self._pdns_replication = PdnsReplicationAnalysis(
                self.world.pdns, self.seeds()
            )
        return self._pdns_replication

    def active_replication(self) -> ActiveReplicationAnalysis:
        return ActiveReplicationAnalysis(self.dataset())

    def diversity(self) -> DiversityAnalysis:
        return DiversityAnalysis(self.dataset(), self.world.geoip)

    def centralization(self) -> CentralizationAnalysis:
        return CentralizationAnalysis(
            self.pdns_replication(), ProviderMatcher()
        )

    def _government_suffixes(self) -> Dict[str, DnsName]:
        return {iso2: seed.d_gov for iso2, seed in self.seeds().items()}

    def delegation(self) -> DelegationAnalysis:
        return DelegationAnalysis(
            self.dataset(),
            registrar=self.world.registrar,
            government_suffixes=self._government_suffixes(),
        )

    def consistency(self) -> ConsistencyAnalysis:
        return ConsistencyAnalysis(
            self.dataset(),
            registrar=self.world.registrar,
            government_suffixes=self._government_suffixes(),
        )

    # ------------------------------------------------------------------
    # Headline numbers (for EXPERIMENTS.md and quick sanity checks)
    # ------------------------------------------------------------------
    def headline(self) -> Dict[str, float]:
        dataset = self.dataset()
        active = self.active_replication()
        delegation = self.delegation()
        consistency = self.consistency()
        prevalence = delegation.prevalence()
        fig13 = consistency.figure13()
        return {
            "targets": float(len(self.targets())),
            "parent_response": float(len(dataset.with_parent_response())),
            "parent_nonempty": float(len(dataset.with_nonempty_parent())),
            "responsive": float(len(dataset.responsive())),
            "share_ge2_ns": active.share_with_at_least(2),
            "single_ns_stale_share": active.figure8_overall(),
            "defective_any": prevalence["any"],
            "defective_partial": prevalence["partial"],
            "defective_full": prevalence["full"],
            "consistent_share": fig13["P=C"],
        }
