"""Measurement result containers and the columnar analysis store.

Every analysis in :mod:`repro.core` consumes :class:`ProbeResult`
objects — one per probed domain — so the data model here is the
contract between the active-measurement pipeline and the §IV analyses.

Two representations coexist:

* The **dict-of-results view** (``dataset.results``) is canonical: the
  prober produces it, :func:`repro.core.journal.dataset_digest`
  serializes it, and every byte of the committed digests depends on it
  alone.  Nothing about the columnar store can perturb a digest.
* The **columnar store** (:class:`DatasetColumns`, reached via
  ``dataset.columns``) is a derived index built lazily on first use:
  one fused pass over the results computes every per-domain verdict
  the §IV analyses need — responsiveness, defect classification and
  confidence, the §IV-D consistency taxonomy, failure persistence —
  into parallel ``bytes``/``array`` columns keyed by admission index.
  The analyses then sweep flat columns (``bytes.count`` for shares,
  ``zip`` for grouped sweeps) instead of re-deriving the same
  properties from per-domain object graphs thousands of times.

Name-typed columns (defective nameservers, parent-only/child-only
sets) hold tuples of interned :class:`~repro.dns.name.DnsName`
references, so membership tests and sorts inside the fused pass reuse
the cached hash/sort-key forms.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..dns.name import DnsName
from ..net.address import IPv4Address

__all__ = [
    "ParentStatus",
    "ServerOutcome",
    "ServerProbe",
    "ProbeResult",
    "DatasetColumns",
    "MeasurementDataset",
    "PARENT_CODES",
    "DEFECT_HEALTHY",
    "DEFECT_PARTIAL",
    "DEFECT_FULL",
    "CONSISTENCY_CODES",
    "PERSISTENCE_CODES",
    "UNCLASSIFIED",
]


class ParentStatus:
    """What the domain's parent-zone nameservers said (paper §III-B)."""

    REFERRAL = "referral"      # non-empty: NS records for the domain
    ANSWER = "answer"          # parent served the NS set authoritatively
    #                            (parent and child co-hosted)
    EMPTY = "empty"            # authoritative NXDOMAIN / NODATA
    NO_RESPONSE = "no_response"  # no parent nameserver replied


class ServerOutcome:
    """Per-address outcome for the final NS query sweep."""

    ANSWER = "answer"      # authoritative answer for the domain's NS
    NODATA = "nodata"      # authoritative, but no NS records
    NXDOMAIN = "nxdomain"
    REFUSED = "refused"
    SERVFAIL = "servfail"
    UPWARD = "upward"      # upward referral (classic lame signature)
    LAME = "lame"          # some other non-authoritative response
    TIMEOUT = "timeout"
    BREAKER_OPEN = "breaker_open"  # probe skipped: circuit breaker open

    # Outcomes that constitute "answering queries for the zone".
    AUTHORITATIVE = frozenset({ANSWER, NODATA})

    # Outcomes that prove only that *we* observed silence (or declined
    # to probe) — not that the server is misconfigured.  A defect
    # verdict resting solely on these is transient-failure-shaped and
    # gets "provisional" confidence until a second round confirms it.
    SOFT_FAILURES = frozenset({TIMEOUT, BREAKER_OPEN})


@dataclass
class ServerProbe:
    """One nameserver hostname's measurement record."""

    hostname: DnsName
    resolvable: bool
    addresses: Tuple[IPv4Address, ...] = ()
    outcomes: Dict[IPv4Address, str] = field(default_factory=dict)
    ns_by_address: Dict[IPv4Address, Tuple[DnsName, ...]] = field(
        default_factory=dict
    )
    # Round-one verdicts that the retry round cleared before
    # re-querying (TIMEOUT / SERVFAIL / BREAKER_OPEN).  Empty unless the
    # domain was retried and this server had transient-shaped failures.
    prior_outcomes: Dict[IPv4Address, str] = field(default_factory=dict)

    @property
    def answered(self) -> bool:
        """Did any address give an authoritative answer for the zone?"""
        return any(
            outcome in ServerOutcome.AUTHORITATIVE
            for outcome in self.outcomes.values()
        )

    @property
    def defective(self) -> bool:
        """A defective (lame) entry: unresolvable, or no address of it
        answers authoritatively for the zone."""
        return not self.resolvable or not self.answered

    @property
    def defect_confidence(self) -> str:
        """How sure the pipeline is that a defect verdict is real.

        ``"confirmed"``
            The defect rests on positive evidence (unresolvable, or an
            active wrong answer such as REFUSED / upward referral), or
            on soft failure observed in *both* measurement rounds — a
            persistently dead server, the paper's Figure-8 category.
        ``"provisional"``
            The only evidence is single-round soft failure (timeout or
            a breaker-skipped probe): indistinguishable from a
            transient outage, so defect prevalence built on it is an
            upper bound.  Meaningless when :attr:`defective` is False.
        """
        if not self.resolvable:
            return "confirmed"
        soft = ServerOutcome.SOFT_FAILURES
        for address, outcome in self.outcomes.items():
            if outcome in ServerOutcome.AUTHORITATIVE:
                continue
            if outcome not in soft:
                return "confirmed"
            if self.prior_outcomes.get(address) in soft:
                return "confirmed"  # silent in both rounds
        return "provisional"


@dataclass
class ProbeResult:
    """Everything the pipeline learned about one domain."""

    domain: DnsName
    iso2: str
    parent_status: str
    parent_ns: Tuple[DnsName, ...] = ()
    child_ns: Tuple[DnsName, ...] = ()
    servers: Dict[DnsName, ServerProbe] = field(default_factory=dict)
    queries_sent: int = 0
    retried: bool = False

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self.domain.level

    @property
    def got_parent_response(self) -> bool:
        return self.parent_status != ParentStatus.NO_RESPONSE

    @property
    def parent_nonempty(self) -> bool:
        return self.parent_status in (ParentStatus.REFERRAL, ParentStatus.ANSWER)

    @property
    def responsive(self) -> bool:
        """At least one authoritative answer from the domain's own
        nameservers — the paper's "responsive domain"."""
        return any(server.answered for server in self.servers.values())

    @property
    def failure_persistence(self) -> Optional[str]:
        """Transient-vs-persistent classification of unresponsiveness.

        ``None``
            The domain answered in round one (no failure to classify),
            or the parent listed nothing to probe.
        ``"transient"``
            Unresponsive in round one, answered after the retry round —
            the population §III-B's retry exists to absorb.
        ``"persistent"``
            Still unresponsive after the retry round: two rounds of
            evidence, the paper's genuinely-dead infrastructure.
        ``"unconfirmed"``
            Unresponsive but never retried (retry round disabled):
            single-round evidence only.
        """
        if not self.parent_nonempty:
            return None
        if self.responsive:
            return "transient" if self.retried else None
        return "persistent" if self.retried else "unconfirmed"

    @property
    def all_ns(self) -> Tuple[DnsName, ...]:
        """P ∪ C in first-seen order."""
        seen: Dict[DnsName, None] = {}
        for hostname in self.parent_ns + self.child_ns:
            seen.setdefault(hostname, None)
        return tuple(seen)

    @property
    def ns_count(self) -> int:
        """The number of distinct nameservers listed for the domain."""
        return len(self.all_ns)

    def answering_addresses(self) -> Tuple[IPv4Address, ...]:
        found: Dict[IPv4Address, None] = {}
        for server in self.servers.values():
            for address, outcome in server.outcomes.items():
                if outcome in ServerOutcome.AUTHORITATIVE:
                    found.setdefault(address, None)
        return tuple(found)

    def resolved_addresses(self) -> Tuple[IPv4Address, ...]:
        found: Dict[IPv4Address, None] = {}
        for server in self.servers.values():
            for address in server.addresses:
                found.setdefault(address, None)
        return tuple(found)


# ----------------------------------------------------------------------
# Column codes
# ----------------------------------------------------------------------
# Parent-response class, one byte per domain.
PARENT_CODES: Dict[str, int] = {
    ParentStatus.REFERRAL: 0,
    ParentStatus.ANSWER: 1,
    ParentStatus.EMPTY: 2,
    ParentStatus.NO_RESPONSE: 3,
}

# §IV-C delegation verdicts.  The string labels live in
# :mod:`repro.core.delegation` (which imports this module); the codes
# are defined here so the fused pass can emit them.
DEFECT_HEALTHY = 0
DEFECT_PARTIAL = 1
DEFECT_FULL = 2

# §IV-D consistency taxonomy, in
# :data:`repro.core.consistency.ConsistencyClass.ALL` order.
CONSISTENCY_CODES: Tuple[str, ...] = (
    "P=C",
    "P⊂C",
    "C⊂P",
    "P∩C≠∅, neither",
    "P∩C=∅, IP overlap",
    "P∩C=∅, no IP overlap",
)

# Failure persistence (code 0 = nothing to classify).
PERSISTENCE_CODES: Tuple[Optional[str], ...] = (
    None,
    "transient",
    "persistent",
    "unconfirmed",
)

# Sentinel for byte columns whose verdict does not apply to a domain
# (empty parent for defect verdicts; non-referral / silent child for
# consistency verdicts).
UNCLASSIFIED = 255


class DatasetColumns:
    """Parallel per-domain arrays, in dataset (admission) order.

    Byte columns use :data:`UNCLASSIFIED` where a verdict does not
    apply, so population shares are single ``bytes.count`` calls over
    the classified remainder.
    """

    __slots__ = (
        "domains",
        "iso2",
        "level",
        "parent_status",
        "responsive",
        "retried",
        "_results",
        "_ns_count",
        "persistence",
        "defect_verdict",
        "defect_provisional",
        "defective_ns",
        "defective_in_parent",
        "consistency_verdict",
        "single_label_ns",
        "parent_only",
        "child_only",
    )

    def __init__(
        self,
        domains: Tuple[DnsName, ...],
        iso2: Tuple[str, ...],
        level: bytes,
        parent_status: bytes,
        responsive: bytes,
        retried: bytes,
        results: Dict[DnsName, ProbeResult],
        persistence: bytes,
        defect_verdict: bytes,
        defect_provisional: bytes,
        defective_ns: Tuple[Tuple[DnsName, ...], ...],
        defective_in_parent: Tuple[Tuple[DnsName, ...], ...],
        consistency_verdict: bytes,
        single_label_ns: bytes,
        parent_only: Tuple[Tuple[DnsName, ...], ...],
        child_only: Tuple[Tuple[DnsName, ...], ...],
    ) -> None:
        self.domains = domains
        self.iso2 = iso2
        self.level = level
        self.parent_status = parent_status
        self.responsive = responsive
        self.retried = retried
        self._results = results
        self._ns_count: Optional["array[int]"] = None
        self.persistence = persistence
        self.defect_verdict = defect_verdict
        self.defect_provisional = defect_provisional
        self.defective_ns = defective_ns
        self.defective_in_parent = defective_in_parent
        self.consistency_verdict = consistency_verdict
        self.single_label_ns = single_label_ns
        self.parent_only = parent_only
        self.child_only = child_only

    def __len__(self) -> int:
        return len(self.domains)

    @property
    def ns_count(self) -> "array[int]":
        """Distinct listed nameservers (|P ∪ C|) per domain.

        Built on first access: only the replication/diversity sweeps
        need it, so the delegation/consistency path never pays for the
        set algebra.
        """
        counts = self._ns_count
        if counts is None:
            counts = array("H", bytes(2 * len(self.domains)))
            for i, result in enumerate(self._results.values()):
                parent_ns = result.parent_ns
                child_ns = result.child_ns
                if child_ns and child_ns != parent_ns:
                    counts[i] = len(set(parent_ns) | set(child_ns))
                elif parent_ns:
                    counts[i] = len(set(parent_ns))
            self._ns_count = counts
        return counts

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, results: Dict[DnsName, ProbeResult]) -> "DatasetColumns":
        """One fused pass over the results.

        Every per-server outcome dict is walked exactly once; the
        per-domain aggregates the analyses re-derived repeatedly
        (``responsive``, ``answered``, ``defective``, defect
        confidence, the consistency taxonomy) fall out of that single
        walk.  The verdict semantics mirror the :class:`ServerProbe` /
        :class:`ProbeResult` properties and the per-domain
        ``classify`` methods bit-for-bit — the equivalence is pinned by
        ``tests/test_columnar.py``.
        """
        n = len(results)
        level = bytearray(n)
        parent_status = bytearray(n)
        responsive_col = bytearray(n)
        retried_col = bytearray(n)
        persistence = bytearray(n)
        defect_verdict = bytearray(n)
        defect_provisional = bytearray(n)
        consistency_verdict = bytearray(n)
        single_label = bytearray(n)
        iso2: List[str] = []
        defective_ns: List[Tuple[DnsName, ...]] = []
        defective_in_parent: List[Tuple[DnsName, ...]] = []
        parent_only: List[Tuple[DnsName, ...]] = []
        child_only: List[Tuple[DnsName, ...]] = []

        authoritative = ServerOutcome.AUTHORITATIVE
        soft = ServerOutcome.SOFT_FAILURES
        referral_code = PARENT_CODES[ParentStatus.REFERRAL]
        parent_codes = PARENT_CODES

        # Bound-method aliases: the loop below appends to these lists
        # once per domain; skipping the attribute lookup is measurable
        # at campaign scale.
        iso2_append = iso2.append
        defective_ns_append = defective_ns.append
        defective_in_parent_append = defective_in_parent.append
        parent_only_append = parent_only.append
        child_only_append = child_only.append

        empty: Tuple[DnsName, ...] = ()
        for i, (domain, result) in enumerate(results.items()):
            iso2_append(result.iso2)
            # Hot loop: read the interned label tuples directly rather
            # than dispatching to Python-level __len__/level per name.
            level[i] = len(domain._labels)
            code = parent_codes[result.parent_status]
            parent_status[i] = code
            nonempty = code <= 1
            retried = result.retried
            if retried:
                retried_col[i] = 1

            # Fused per-server sweep.  The common case — a resolvable
            # server with an authoritative answer — is decided by one
            # C-level ``isdisjoint`` over the outcome values; only
            # defective servers fall through to the per-address
            # confidence walk, and only until one confirmed defect is
            # seen (the verdict needs *any*, not all).
            responsive = False
            defects: List[DnsName] = []
            any_confirmed_defect = False
            servers = result.servers
            for hostname, server in servers.items():
                resolvable = server.resolvable
                answered = not authoritative.isdisjoint(
                    server.outcomes.values()
                )
                if answered:
                    responsive = True
                    if resolvable:
                        continue  # healthy entry
                defects.append(hostname)
                if any_confirmed_defect:
                    continue
                if not resolvable:
                    any_confirmed_defect = True
                    continue
                prior = server.prior_outcomes
                for address, outcome in server.outcomes.items():
                    if outcome in authoritative:
                        continue
                    if outcome not in soft or (
                        prior and prior.get(address) in soft
                    ):
                        any_confirmed_defect = True  # positive evidence
                        break  #                       or two-round silence
            if responsive:
                responsive_col[i] = 1

            parent_ns = result.parent_ns
            child_ns = result.child_ns
            # The dominant case is a child NS tuple identical to the
            # parent's (the paper's 76.8% P=C); equal tuples mean equal
            # sets, so all the set algebra below collapses.
            identical = child_ns == parent_ns

            if defects:
                defect_tuple = tuple(defects)
                defective_ns_append(defect_tuple)
                # Tuple membership over a handful of interned names is
                # an identity scan in C — cheaper than building a set
                # (whose inserts dispatch to Python-level __hash__).
                defective_in_parent_append(
                    tuple([h for h in defect_tuple if h in parent_ns])
                )
            else:
                defect_tuple = empty
                defective_ns_append(empty)
                defective_in_parent_append(empty)

            # §IV-C verdict (only defined for a non-empty parent).
            if not nonempty:
                defect_verdict[i] = UNCLASSIFIED
            elif not responsive:
                defect_verdict[i] = DEFECT_FULL
                if defect_tuple and not any_confirmed_defect:
                    defect_provisional[i] = 1
            elif defect_tuple:
                defect_verdict[i] = DEFECT_PARTIAL
                if not any_confirmed_defect:
                    defect_provisional[i] = 1
            # else: DEFECT_HEALTHY == 0, the bytearray default.

            # §IV-D taxonomy (responsive referrals with a child answer).
            if responsive and code == referral_code and child_ns:
                if identical:
                    # P=C: nothing parent- or child-only.
                    for hostname in parent_ns:
                        if len(hostname._labels) == 1:
                            single_label[i] = 1
                            break
                    # consistency_verdict[i] stays 0 == EQUAL.
                    parent_only_append(empty)
                    child_only_append(empty)
                else:
                    parent_set = set(parent_ns)
                    child_set = set(child_ns)
                    for hostname in parent_set | child_set:
                        if len(hostname._labels) == 1:
                            single_label[i] = 1
                            break
                    if parent_set == child_set:
                        cv = 0
                    elif parent_set & child_set:
                        if parent_set < child_set:
                            cv = 1
                        elif child_set < parent_set:
                            cv = 2
                        else:
                            cv = 3
                    else:
                        parent_ips: set = set()
                        child_ips: set = set()
                        for hostname in parent_set:
                            server = servers.get(hostname)
                            if server is not None:
                                parent_ips.update(server.addresses)
                        for hostname in child_set:
                            server = servers.get(hostname)
                            if server is not None:
                                child_ips.update(server.addresses)
                        cv = 4 if parent_ips & child_ips else 5
                    consistency_verdict[i] = cv
                    parent_only_append(tuple(sorted(parent_set - child_set)))
                    child_only_append(tuple(sorted(child_set - parent_set)))
            else:
                consistency_verdict[i] = UNCLASSIFIED
                parent_only_append(empty)
                child_only_append(empty)

            # Failure persistence.
            if not nonempty:
                pass  # persistence[i] stays 0 == nothing to classify
            elif responsive:
                if retried:
                    persistence[i] = 1
            else:
                persistence[i] = 2 if retried else 3

        return cls(
            domains=tuple(results),
            iso2=tuple(iso2),
            level=bytes(level),
            parent_status=bytes(parent_status),
            responsive=bytes(responsive_col),
            retried=bytes(retried_col),
            results=results,
            persistence=bytes(persistence),
            defect_verdict=bytes(defect_verdict),
            defect_provisional=bytes(defect_provisional),
            defective_ns=tuple(defective_ns),
            defective_in_parent=tuple(defective_in_parent),
            consistency_verdict=bytes(consistency_verdict),
            single_label_ns=bytes(single_label),
            parent_only=tuple(parent_only),
            child_only=tuple(child_only),
        )


@dataclass
class MeasurementDataset:
    """The full campaign's results plus simple accessors.

    ``results`` is the canonical store (it alone feeds the dataset
    digest); ``columns`` is the lazily-built columnar index the §IV
    analyses sweep.  Treat a dataset as frozen once built — mutating
    ``results`` after the columns materialize would desynchronize the
    two views.
    """

    results: Dict[DnsName, ProbeResult]
    _columns: Optional[DatasetColumns] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def columns(self) -> DatasetColumns:
        if self._columns is None:
            self._columns = DatasetColumns.build(self.results)
        return self._columns

    @classmethod
    def merge(
        cls,
        parts: "Iterable[MeasurementDataset]",
        labels: Optional[Sequence[str]] = None,
        epoch: Optional[int] = None,
    ) -> "MeasurementDataset":
        """Combine disjoint per-shard datasets into admission order.

        The campaign admits domains in sorted order, so the merge
        concatenates the per-part domain columns and argsorts the
        union by admission key — the result is byte-identical to a
        single-process campaign over the same targets regardless of
        how they were partitioned.  Overlapping shards are a
        partitioning bug and raise, naming the colliding domain and
        both offending shards (``labels`` defaults to positional
        ``"shard N"`` names).

        ``epoch`` tags every shard name with the measurement epoch the
        parts belong to, so a longitudinal pipeline that accidentally
        merges shards from different epochs fails with both the epoch
        and the shard named in the error instead of an anonymous
        ``shard N`` collision.
        """
        materialized = list(parts)
        if labels is None:
            names = [f"shard {index}" for index in range(len(materialized))]
        else:
            names = [str(label) for label in labels]
            if len(names) != len(materialized):
                raise ValueError(
                    f"{len(names)} labels for {len(materialized)} shards"
                )
        if epoch is not None:
            names = [f"epoch {epoch} {name}" for name in names]
        domains: List[DnsName] = []
        rows: List[ProbeResult] = []
        owner: Dict[DnsName, int] = {}
        for index, part in enumerate(materialized):
            for domain, result in part.results.items():
                previous = owner.get(domain)
                if previous is not None:
                    raise ValueError(
                        f"domain {domain} appears in more than one shard: "
                        f"{names[previous]} and {names[index]}"
                    )
                owner[domain] = index
                domains.append(domain)
                rows.append(result)
        order = sorted(range(len(domains)), key=domains.__getitem__)
        return cls({domains[i]: rows[i] for i in order})

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ProbeResult]:
        return iter(self.results.values())

    def __getitem__(self, domain: DnsName) -> ProbeResult:
        return self.results[domain]

    def __contains__(self, domain: DnsName) -> bool:
        return domain in self.results

    # Population slices used throughout §IV -----------------------------
    def with_parent_response(self) -> List[ProbeResult]:
        columns = self.columns
        no_response = PARENT_CODES[ParentStatus.NO_RESPONSE]
        results = self.results
        return [
            results[domain]
            for domain, code in zip(columns.domains, columns.parent_status)
            if code != no_response
        ]

    def with_nonempty_parent(self) -> List[ProbeResult]:
        columns = self.columns
        results = self.results
        return [
            results[domain]
            for domain, code in zip(columns.domains, columns.parent_status)
            if code <= 1
        ]

    def responsive(self) -> List[ProbeResult]:
        columns = self.columns
        results = self.results
        return [
            results[domain]
            for domain, flag in zip(columns.domains, columns.responsive)
            if flag
        ]

    def persistence_counts(self) -> Dict[str, int]:
        """Histogram of :attr:`ProbeResult.failure_persistence` values
        (domains with nothing to classify are excluded)."""
        column = self.columns.persistence
        counts: Dict[str, int] = {}
        for code, name in enumerate(PERSISTENCE_CODES):
            if name is None:
                continue
            count = column.count(code)
            if count:
                counts[name] = count
        return counts

    def by_country(self) -> Dict[str, List[ProbeResult]]:
        columns = self.columns
        results = self.results
        grouped: Dict[str, List[ProbeResult]] = {}
        for domain, iso2 in zip(columns.domains, columns.iso2):
            grouped.setdefault(iso2, []).append(results[domain])
        return grouped

    def level_distribution(self) -> Dict[int, float]:
        """DNS-hierarchy level → share of all probed domains.

        The paper reports <1% second-level, 85.4% third-level, and
        10.9% fourth-level among the domains examined.
        """
        column = self.columns.level
        total = len(column)
        if not total:
            return {}
        return {
            level: column.count(level) / total
            for level in sorted(set(column))
        }

    def dominant_country_by_level(self) -> Dict[int, Tuple[str, float]]:
        """Level → (ISO2, share of that level's domains).

        Delegation strategies make some countries dominate a level —
        the paper finds 16% of its third-level domains in gov.cn and
        53% of its fourth-level ones in gov.br.
        """
        columns = self.columns
        by_level: Dict[int, Dict[str, int]] = {}
        for level, iso2 in zip(columns.level, columns.iso2):
            per_country = by_level.setdefault(level, {})
            per_country[iso2] = per_country.get(iso2, 0) + 1
        out: Dict[int, Tuple[str, float]] = {}
        for level, per_country in sorted(by_level.items()):
            iso2, count = max(per_country.items(), key=lambda kv: kv[1])
            out[level] = (iso2, count / sum(per_country.values()))
        return out
