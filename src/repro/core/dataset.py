"""Measurement result containers.

Every analysis in :mod:`repro.core` consumes :class:`ProbeResult`
objects — one per probed domain — so the data model here is the
contract between the active-measurement pipeline and the §IV analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..dns.name import DnsName
from ..net.address import IPv4Address

__all__ = [
    "ParentStatus",
    "ServerOutcome",
    "ServerProbe",
    "ProbeResult",
    "MeasurementDataset",
]


class ParentStatus:
    """What the domain's parent-zone nameservers said (paper §III-B)."""

    REFERRAL = "referral"      # non-empty: NS records for the domain
    ANSWER = "answer"          # parent served the NS set authoritatively
    #                            (parent and child co-hosted)
    EMPTY = "empty"            # authoritative NXDOMAIN / NODATA
    NO_RESPONSE = "no_response"  # no parent nameserver replied


class ServerOutcome:
    """Per-address outcome for the final NS query sweep."""

    ANSWER = "answer"      # authoritative answer for the domain's NS
    NODATA = "nodata"      # authoritative, but no NS records
    NXDOMAIN = "nxdomain"
    REFUSED = "refused"
    SERVFAIL = "servfail"
    UPWARD = "upward"      # upward referral (classic lame signature)
    LAME = "lame"          # some other non-authoritative response
    TIMEOUT = "timeout"
    BREAKER_OPEN = "breaker_open"  # probe skipped: circuit breaker open

    # Outcomes that constitute "answering queries for the zone".
    AUTHORITATIVE = frozenset({ANSWER, NODATA})

    # Outcomes that prove only that *we* observed silence (or declined
    # to probe) — not that the server is misconfigured.  A defect
    # verdict resting solely on these is transient-failure-shaped and
    # gets "provisional" confidence until a second round confirms it.
    SOFT_FAILURES = frozenset({TIMEOUT, BREAKER_OPEN})


@dataclass
class ServerProbe:
    """One nameserver hostname's measurement record."""

    hostname: DnsName
    resolvable: bool
    addresses: Tuple[IPv4Address, ...] = ()
    outcomes: Dict[IPv4Address, str] = field(default_factory=dict)
    ns_by_address: Dict[IPv4Address, Tuple[DnsName, ...]] = field(
        default_factory=dict
    )
    # Round-one verdicts that the retry round cleared before
    # re-querying (TIMEOUT / SERVFAIL / BREAKER_OPEN).  Empty unless the
    # domain was retried and this server had transient-shaped failures.
    prior_outcomes: Dict[IPv4Address, str] = field(default_factory=dict)

    @property
    def answered(self) -> bool:
        """Did any address give an authoritative answer for the zone?"""
        return any(
            outcome in ServerOutcome.AUTHORITATIVE
            for outcome in self.outcomes.values()
        )

    @property
    def defective(self) -> bool:
        """A defective (lame) entry: unresolvable, or no address of it
        answers authoritatively for the zone."""
        return not self.resolvable or not self.answered

    @property
    def defect_confidence(self) -> str:
        """How sure the pipeline is that a defect verdict is real.

        ``"confirmed"``
            The defect rests on positive evidence (unresolvable, or an
            active wrong answer such as REFUSED / upward referral), or
            on soft failure observed in *both* measurement rounds — a
            persistently dead server, the paper's Figure-8 category.
        ``"provisional"``
            The only evidence is single-round soft failure (timeout or
            a breaker-skipped probe): indistinguishable from a
            transient outage, so defect prevalence built on it is an
            upper bound.  Meaningless when :attr:`defective` is False.
        """
        if not self.resolvable:
            return "confirmed"
        soft = ServerOutcome.SOFT_FAILURES
        for address, outcome in self.outcomes.items():
            if outcome in ServerOutcome.AUTHORITATIVE:
                continue
            if outcome not in soft:
                return "confirmed"
            if self.prior_outcomes.get(address) in soft:
                return "confirmed"  # silent in both rounds
        return "provisional"


@dataclass
class ProbeResult:
    """Everything the pipeline learned about one domain."""

    domain: DnsName
    iso2: str
    parent_status: str
    parent_ns: Tuple[DnsName, ...] = ()
    child_ns: Tuple[DnsName, ...] = ()
    servers: Dict[DnsName, ServerProbe] = field(default_factory=dict)
    queries_sent: int = 0
    retried: bool = False

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self.domain.level

    @property
    def got_parent_response(self) -> bool:
        return self.parent_status != ParentStatus.NO_RESPONSE

    @property
    def parent_nonempty(self) -> bool:
        return self.parent_status in (ParentStatus.REFERRAL, ParentStatus.ANSWER)

    @property
    def responsive(self) -> bool:
        """At least one authoritative answer from the domain's own
        nameservers — the paper's "responsive domain"."""
        return any(server.answered for server in self.servers.values())

    @property
    def failure_persistence(self) -> Optional[str]:
        """Transient-vs-persistent classification of unresponsiveness.

        ``None``
            The domain answered in round one (no failure to classify),
            or the parent listed nothing to probe.
        ``"transient"``
            Unresponsive in round one, answered after the retry round —
            the population §III-B's retry exists to absorb.
        ``"persistent"``
            Still unresponsive after the retry round: two rounds of
            evidence, the paper's genuinely-dead infrastructure.
        ``"unconfirmed"``
            Unresponsive but never retried (retry round disabled):
            single-round evidence only.
        """
        if not self.parent_nonempty:
            return None
        if self.responsive:
            return "transient" if self.retried else None
        return "persistent" if self.retried else "unconfirmed"

    @property
    def all_ns(self) -> Tuple[DnsName, ...]:
        """P ∪ C in first-seen order."""
        seen: Dict[DnsName, None] = {}
        for hostname in self.parent_ns + self.child_ns:
            seen.setdefault(hostname, None)
        return tuple(seen)

    @property
    def ns_count(self) -> int:
        """The number of distinct nameservers listed for the domain."""
        return len(self.all_ns)

    def answering_addresses(self) -> Tuple[IPv4Address, ...]:
        found: Dict[IPv4Address, None] = {}
        for server in self.servers.values():
            for address, outcome in server.outcomes.items():
                if outcome in ServerOutcome.AUTHORITATIVE:
                    found.setdefault(address, None)
        return tuple(found)

    def resolved_addresses(self) -> Tuple[IPv4Address, ...]:
        found: Dict[IPv4Address, None] = {}
        for server in self.servers.values():
            for address in server.addresses:
                found.setdefault(address, None)
        return tuple(found)


@dataclass
class MeasurementDataset:
    """The full campaign's results plus simple accessors."""

    results: Dict[DnsName, ProbeResult]

    @classmethod
    def merge(
        cls, parts: "Iterable[MeasurementDataset]"
    ) -> "MeasurementDataset":
        """Combine disjoint per-shard datasets into admission order.

        The campaign admits domains in sorted order, so the merged
        dataset re-sorts the union — the result is byte-identical to a
        single-process campaign over the same targets regardless of how
        they were partitioned.  Overlapping shards are a partitioning
        bug and raise.
        """
        combined: Dict[DnsName, ProbeResult] = {}
        for part in parts:
            for domain, result in part.results.items():
                if domain in combined:
                    raise ValueError(
                        f"domain {domain} appears in more than one shard"
                    )
                combined[domain] = result
        return cls({domain: combined[domain] for domain in sorted(combined)})

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ProbeResult]:
        return iter(self.results.values())

    def __getitem__(self, domain: DnsName) -> ProbeResult:
        return self.results[domain]

    def __contains__(self, domain: DnsName) -> bool:
        return domain in self.results

    # Population slices used throughout §IV -----------------------------
    def with_parent_response(self) -> List[ProbeResult]:
        return [r for r in self if r.got_parent_response]

    def with_nonempty_parent(self) -> List[ProbeResult]:
        return [r for r in self if r.parent_nonempty]

    def responsive(self) -> List[ProbeResult]:
        return [r for r in self if r.responsive]

    def persistence_counts(self) -> Dict[str, int]:
        """Histogram of :attr:`ProbeResult.failure_persistence` values
        (domains with nothing to classify are excluded)."""
        counts: Dict[str, int] = {}
        for result in self:
            key = result.failure_persistence
            if key is not None:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def by_country(self) -> Dict[str, List[ProbeResult]]:
        grouped: Dict[str, List[ProbeResult]] = {}
        for result in self:
            grouped.setdefault(result.iso2, []).append(result)
        return grouped

    def level_distribution(self) -> Dict[int, float]:
        """DNS-hierarchy level → share of all probed domains.

        The paper reports <1% second-level, 85.4% third-level, and
        10.9% fourth-level among the domains examined.
        """
        counts: Dict[int, int] = {}
        for result in self:
            counts[result.level] = counts.get(result.level, 0) + 1
        total = len(self.results)
        return {
            level: counts[level] / total for level in sorted(counts)
        } if total else {}

    def dominant_country_by_level(self) -> Dict[int, Tuple[str, float]]:
        """Level → (ISO2, share of that level's domains).

        Delegation strategies make some countries dominate a level —
        the paper finds 16% of its third-level domains in gov.cn and
        53% of its fourth-level ones in gov.br.
        """
        by_level: Dict[int, Dict[str, int]] = {}
        for result in self:
            per_country = by_level.setdefault(result.level, {})
            per_country[result.iso2] = per_country.get(result.iso2, 0) + 1
        out: Dict[int, Tuple[str, float]] = {}
        for level, per_country in sorted(by_level.items()):
            iso2, count = max(per_country.items(), key=lambda kv: kv[1])
            out[level] = (iso2, count / sum(per_country.values()))
        return out
