"""Nameserver-replication analyses (paper §IV-A).

Two data sources, as in the paper:

- **PDNS** (longitudinal): per-domain, per-year deployment state
  summarized as the *mode* of the daily nameserver count (the
  ``NS_daily`` construction of Figure 5), feeding Figures 2/3/4/6/7;
- **active measurements**: the Figure 8 staleness rates and Figure 9
  replication CDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..dns.name import DnsName
from ..dns.rdata import RRType
from ..net.clock import SECONDS_PER_DAY, year_bounds
from ..pdns.database import PdnsDatabase
from ..pdns.filtering import stable_records
from ..pdns.record import PdnsRecord
from .dataset import MeasurementDataset, ProbeResult
from .seeds import Seed

__all__ = [
    "CountryMapper",
    "YearState",
    "PdnsReplicationAnalysis",
    "ActiveReplicationAnalysis",
]


class CountryMapper:
    """Longest-suffix mapping from a domain name to its seed country."""

    def __init__(self, seeds: Mapping[str, Seed]) -> None:
        self._by_suffix: Dict[DnsName, str] = {
            seed.d_gov: iso2 for iso2, seed in seeds.items()
        }

    def country_of(self, name: DnsName) -> Optional[str]:
        best: Optional[Tuple[int, str]] = None
        for suffix, iso2 in self._by_suffix.items():
            if name.is_subdomain_of(suffix):
                if best is None or len(suffix) > best[0]:
                    best = (len(suffix), iso2)
        return best[1] if best is not None else None

    def seed_suffix_of(self, name: DnsName) -> Optional[DnsName]:
        best: Optional[DnsName] = None
        for suffix in self._by_suffix:
            if name.is_subdomain_of(suffix):
                if best is None or len(suffix) > len(best):
                    best = suffix
        return best


@dataclass
class YearState:
    """One domain's summarized state for one calendar year."""

    domain: DnsName
    iso2: str
    year: int
    mode_ns_count: int
    hostnames: Tuple[str, ...]
    private: bool  # every hostname inside the domain's own d_gov


def _daily_count_durations(
    intervals: Sequence[Tuple[float, float]], year_start: float, year_end: float
) -> Dict[int, float]:
    """Time spent at each active-record count over a year.

    ``intervals`` are (first_seen, last_seen) spans; periods with zero
    active records are ignored (the paper's NS_daily only includes days
    where NS records appear active).
    """
    events: List[Tuple[float, int]] = []
    for first, last in intervals:
        start = max(first, year_start)
        end = min(last + SECONDS_PER_DAY, year_end)  # last day inclusive
        if end <= start:
            continue
        events.append((start, 1))
        events.append((end, -1))
    if not events:
        return {}
    events.sort()
    duration_by_count: Dict[int, float] = {}
    active = 0
    previous = events[0][0]
    for moment, delta in events:
        if moment > previous and active > 0:
            duration_by_count[active] = (
                duration_by_count.get(active, 0.0) + moment - previous
            )
        active += delta
        previous = moment
    return duration_by_count


def _mode_of_daily_counts(
    intervals: Sequence[Tuple[float, float]], year_start: float, year_end: float
) -> int:
    """Mode of the per-day active-record count (the paper's Figure-5
    summarization); ties break toward the larger deployment."""
    durations = _daily_count_durations(intervals, year_start, year_end)
    if not durations:
        return 0
    return max(durations.items(), key=lambda kv: (kv[1], kv[0]))[0]


def _summarize_daily_counts(
    intervals: Sequence[Tuple[float, float]],
    year_start: float,
    year_end: float,
    how: str,
) -> int:
    durations = _daily_count_durations(intervals, year_start, year_end)
    if not durations:
        return 0
    if how == "min":
        return min(durations)
    if how == "max":
        return max(durations)
    return max(durations.items(), key=lambda kv: (kv[1], kv[0]))[0]


class PdnsReplicationAnalysis:
    """Longitudinal deployment analysis over stable PDNS records."""

    def __init__(
        self,
        pdns: PdnsDatabase,
        seeds: Mapping[str, Seed],
        years: Sequence[int] = tuple(range(2011, 2021)),
        stability_days: float = 7.0,
        year_summary: str = "mode",
    ) -> None:
        """``year_summary`` picks how NS_daily collapses to one number
        per year: ``mode`` (the paper's choice, Figure 5), ``min``, or
        ``max`` — the alternatives exist for the ablation study."""
        if year_summary not in ("mode", "min", "max"):
            raise ValueError(f"unknown year summary: {year_summary!r}")
        self._pdns = pdns
        self._seeds = dict(seeds)
        self._mapper = CountryMapper(seeds)
        self._years = tuple(years)
        self._stability_days = stability_days
        self._year_summary = year_summary
        self._states: Optional[Dict[int, Dict[DnsName, YearState]]] = None

    @property
    def pdns(self) -> PdnsDatabase:
        """The underlying PDNS store (centralization's SOA fallback
        reads it directly)."""
        return self._pdns

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _domain_rows(self) -> Dict[DnsName, Tuple[str, List[PdnsRecord]]]:
        """{domain → (iso2, stable NS records)} across all seeds."""
        rows: Dict[DnsName, Tuple[str, List[PdnsRecord]]] = {}
        for iso2, seed in self._seeds.items():
            records = self._pdns.wildcard_left(seed.d_gov, rrtype=RRType.NS)
            for record in stable_records(records, self._stability_days):
                if record.rrname == seed.d_gov:
                    continue
                entry = rows.get(record.rrname)
                if entry is None:
                    rows[record.rrname] = (iso2, [record])
                else:
                    entry[1].append(record)
        return rows

    def year_states(self) -> Dict[int, Dict[DnsName, YearState]]:
        """Per-year, per-domain deployment summaries (cached)."""
        if self._states is not None:
            return self._states
        rows = self._domain_rows()
        states: Dict[int, Dict[DnsName, YearState]] = {
            year: {} for year in self._years
        }
        suffix_cache: Dict[DnsName, Optional[DnsName]] = {}
        for domain, (iso2, records) in rows.items():
            seed_suffix = suffix_cache.get(domain)
            if domain not in suffix_cache:
                seed_suffix = self._mapper.seed_suffix_of(domain)
                suffix_cache[domain] = seed_suffix
            for year in self._years:
                start, end = year_bounds(year)
                active = [
                    r for r in records if r.active_during(start, end)
                ]
                if not active:
                    continue
                mode = _summarize_daily_counts(
                    [(r.first_seen, r.last_seen) for r in active],
                    start,
                    end,
                    self._year_summary,
                )
                if mode <= 0:
                    continue
                hostnames = tuple(sorted({r.rdata for r in active}))
                private = bool(seed_suffix) and all(
                    DnsName.parse(h).is_subdomain_of(seed_suffix)
                    for h in hostnames
                )
                states[year][domain] = YearState(
                    domain=domain,
                    iso2=iso2,
                    year=year,
                    mode_ns_count=mode,
                    hostnames=hostnames,
                    private=private,
                )
        self._states = states
        return states

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------
    def figure2(self) -> Dict[int, Tuple[int, int]]:
        """Year → (#domains with NS data, #countries with data)."""
        out: Dict[int, Tuple[int, int]] = {}
        for year, states in self.year_states().items():
            countries = {s.iso2 for s in states.values()}
            out[year] = (len(states), len(countries))
        return out

    def figure3(self) -> Dict[int, int]:
        """Year → #distinct nameserver hostnames."""
        out: Dict[int, int] = {}
        for year, states in self.year_states().items():
            hostnames = set()
            for state in states.values():
                hostnames.update(state.hostnames)
            out[year] = len(hostnames)
        return out

    def figure4(self, year: int = 2020) -> Dict[str, int]:
        """ISO2 → #domains with data in the given year."""
        counts: Dict[str, int] = {}
        for state in self.year_states()[year].values():
            counts[state.iso2] = counts.get(state.iso2, 0) + 1
        return counts

    def single_ns_domains(self, year: int) -> Dict[DnsName, YearState]:
        return {
            domain: state
            for domain, state in self.year_states()[year].items()
            if state.mode_ns_count == 1
        }

    def figure6(self) -> Dict[int, Dict[str, float]]:
        """Year → {overlap_2011, new_share, gone_share}.

        ``overlap_2011``: fraction of the 2011 d_1NS cohort still d_1NS
        this year (the paper's 21%-by-2020 series); ``new_share``:
        d_1NS not d_1NS the year before; ``gone_share``: last year's
        d_1NS no longer present.
        """
        cohort_2011 = set(self.single_ns_domains(self._years[0]))
        out: Dict[int, Dict[str, float]] = {}
        previous: Optional[set] = None
        for year in self._years:
            current = set(self.single_ns_domains(year))
            row: Dict[str, float] = {}
            if cohort_2011:
                row["overlap_2011"] = len(current & cohort_2011) / len(cohort_2011)
            if previous is not None:
                if current:
                    row["new_share"] = len(current - previous) / len(current)
                if previous:
                    row["gone_share"] = len(previous - current) / len(previous)
            out[year] = row
            previous = current
        return out

    def figure7(self) -> Dict[int, Tuple[float, float]]:
        """Year → (% of d_1NS private, % of all domains private)."""
        out: Dict[int, Tuple[float, float]] = {}
        for year, states in self.year_states().items():
            if not states:
                out[year] = (0.0, 0.0)
                continue
            singles = [s for s in states.values() if s.mode_ns_count == 1]
            single_private = (
                sum(1 for s in singles if s.private) / len(singles)
                if singles
                else 0.0
            )
            overall_private = sum(
                1 for s in states.values() if s.private
            ) / len(states)
            out[year] = (single_private, overall_private)
        return out


class ActiveReplicationAnalysis:
    """Replication findings from the active campaign (Figures 8/9)."""

    def __init__(self, dataset: MeasurementDataset) -> None:
        self._dataset = dataset

    def _listed_rows(self) -> List[Tuple[str, int, int]]:
        """(iso2, ns_count, responsive) per listed domain, swept from
        the columns (non-empty parent, at least one nameserver)."""
        columns = self._dataset.columns
        return [
            (iso2, count, flag)
            for iso2, count, flag, code in zip(
                columns.iso2,
                columns.ns_count,
                columns.responsive,
                columns.parent_status,
            )
            if code <= 1 and count > 0
        ]

    # ------------------------------------------------------------------
    def figure9_distribution(self) -> Dict[int, int]:
        """#nameservers listed → #domains (the Figure 9 CDF's mass)."""
        histogram: Dict[int, int] = {}
        for _, count, _ in self._listed_rows():
            histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    def share_with_at_least(self, count: int) -> float:
        """Fraction of listed domains with ≥ ``count`` nameservers
        (the paper's 98.4% at count=2)."""
        listed = self._listed_rows()
        if not listed:
            return 0.0
        return sum(1 for _, c, _ in listed if c >= count) / len(listed)

    def countries_fully_replicated(self) -> int:
        """Countries where no listed domain is single-NS (paper: 109)."""
        fully = 0
        for counts in self._by_country_listed().values():
            if all(count >= 2 for count in counts):
                fully += 1
        return fully

    def countries_with_single_ns_share_over(self, threshold: float) -> List[str]:
        """Countries where > threshold of listed domains are single-NS
        (paper: 15 at 10%)."""
        flagged = []
        for iso2, counts in self._by_country_listed().items():
            singles = sum(1 for count in counts if count == 1)
            if counts and singles / len(counts) >= threshold:
                flagged.append(iso2)
        return sorted(flagged)

    def _by_country_listed(self) -> Dict[str, List[int]]:
        """ISO2 → listed domains' nameserver counts."""
        grouped: Dict[str, List[int]] = {}
        for iso2, count, _ in self._listed_rows():
            grouped.setdefault(iso2, []).append(count)
        return grouped

    # ------------------------------------------------------------------
    def single_ns_results(self) -> List[ProbeResult]:
        columns = self._dataset.columns
        results = self._dataset.results
        return [
            results[domain]
            for domain, count, code in zip(
                columns.domains, columns.ns_count, columns.parent_status
            )
            if code <= 1 and count == 1
        ]

    def figure8_overall(self) -> float:
        """Share of single-NS domains with no authoritative response
        (the paper's 60.1%)."""
        singles = [row for row in self._listed_rows() if row[1] == 1]
        if not singles:
            return 0.0
        return sum(1 for _, _, flag in singles if not flag) / len(singles)

    def figure8_by_country(self, min_singles: int = 3) -> Dict[str, float]:
        """ISO2 → share of its d_1NS with no authoritative response."""
        # ISO2 → [singles, unresponsive singles]
        grouped: Dict[str, List[int]] = {}
        for iso2, count, flag in self._listed_rows():
            if count != 1:
                continue
            counts = grouped.setdefault(iso2, [0, 0])
            counts[0] += 1
            if not flag:
                counts[1] += 1
        return {
            iso2: unresponsive / singles
            for iso2, (singles, unresponsive) in grouped.items()
            if singles >= min_singles
        }
