"""Target-list construction (paper §III-B).

Expand each seed via left-hand-wildcard PDNS searches over the activity
window (January 2020 → February 2021), then drop names that look
disposable — machine-generated throwaway labels that would waste query
budget and pollute the deployment statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from ..dns.name import DnsName
from ..dns.rdata import RRType
from ..net.clock import date_to_epoch
from ..pdns.database import PdnsDatabase
from .seeds import Seed

__all__ = ["looks_disposable", "TargetListBuilder", "DEFAULT_WINDOW"]

DEFAULT_WINDOW: Tuple[float, float] = (
    date_to_epoch(2020, 1, 1),
    date_to_epoch(2021, 2, 15),
)


def looks_disposable(name: DnsName) -> bool:
    """Heuristic for machine-generated throwaway names.

    Long leftmost labels dominated by hex/digit churn are the signature
    of session tokens, DGA output, and per-deploy hostnames.
    """
    if name.is_root:
        return False
    label = name.labels[0]
    if len(label) < 10:
        return False
    hexish = sum(1 for ch in label if ch in "0123456789abcdef")
    return hexish / len(label) > 0.85


class TargetListBuilder:
    """Seed → probe-target expansion over PDNS."""

    def __init__(
        self,
        pdns: PdnsDatabase,
        window: Tuple[float, float] = DEFAULT_WINDOW,
    ) -> None:
        start, end = window
        if end <= start:
            raise ValueError("window end must follow start")
        self._pdns = pdns
        self._window = window

    def expand_seed(self, seed: Seed) -> Tuple[DnsName, ...]:
        """All in-window NS-record owner names under one seed.

        The seed itself is excluded — it is the registry/suffix zone,
        not a measured domain.
        """
        start, end = self._window
        names = self._pdns.names_under(
            seed.d_gov,
            rrtype=RRType.NS,
            seen_after=start,
            seen_before=end,
        )
        return tuple(
            name
            for name in names
            if name != seed.d_gov and not looks_disposable(name)
        )

    def raw_count(self, seed: Seed) -> int:
        """In-window names before disposable filtering (for reporting
        how much the filter removes)."""
        start, end = self._window
        names = self._pdns.names_under(
            seed.d_gov, rrtype=RRType.NS, seen_after=start, seen_before=end
        )
        return sum(1 for name in names if name != seed.d_gov)

    def build(self, seeds: Mapping[str, Seed]) -> Dict[DnsName, str]:
        """{target domain → ISO2} across all seeds.

        When seeds nest (one country's registered domain under another's
        suffix — does not happen with UN data but is cheap to guard),
        the longest seed wins.
        """
        targets: Dict[DnsName, str] = {}
        claimed: Dict[DnsName, DnsName] = {}
        for iso2, seed in sorted(
            seeds.items(), key=lambda item: len(item[1].d_gov)
        ):
            for name in self.expand_seed(seed):
                previous = claimed.get(name)
                if previous is None or len(seed.d_gov) > len(previous):
                    targets[name] = iso2
                    claimed[name] = seed.d_gov
        return targets
