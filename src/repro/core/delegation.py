"""Defective-delegation analysis (paper §IV-C, Figures 10/11/12).

A nameserver listed for a zone that does not answer queries for it is a
defective (lame) entry; a delegation is *partially* defective when at
least one listed nameserver is defective, and *fully* defective when no
listed nameserver answers.  Fully defective delegations with still-
listed records are the stale-record/zombie pattern, and defective
entries whose hostnames sit under registrable domains are direct
hijacking opportunities — priced here via the registrar substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..dns.name import DnsName
from ..registry.registrar import Quote, Registrar
from .dataset import (
    DEFECT_FULL,
    DEFECT_PARTIAL,
    UNCLASSIFIED,
    MeasurementDataset,
    ProbeResult,
)

__all__ = [
    "DelegationClass",
    "DefectReport",
    "HijackExposure",
    "DelegationAnalysis",
]


class DelegationClass:
    """Per-domain delegation verdicts."""

    HEALTHY = "healthy"
    PARTIAL = "partially_defective"
    FULL = "fully_defective"

    # Indexed by the dataset layer's defect-verdict byte codes.
    BY_CODE = (HEALTHY, PARTIAL, FULL)


@dataclass(frozen=True)
class DefectReport:
    """One domain's defective-delegation classification.

    ``confidence`` qualifies a defect verdict: ``"confirmed"`` when at
    least one defective server shows positive evidence (unresolvable,
    an active wrong answer, or soft failure across both measurement
    rounds), ``"provisional"`` when every defect rests on single-round
    soft failure only (see
    :attr:`repro.core.dataset.ServerProbe.defect_confidence`).  Healthy
    domains are always ``"confirmed"``.
    """

    domain: DnsName
    iso2: str
    verdict: str
    defective_ns: Tuple[DnsName, ...]
    defective_in_parent: Tuple[DnsName, ...]
    confidence: str = "confirmed"

    @property
    def any_defect(self) -> bool:
        return self.verdict != DelegationClass.HEALTHY


@dataclass
class HijackExposure:
    """Registrable nameserver domains and the victims they control."""

    # registrable d_ns → quotes and victims
    available: Dict[DnsName, Quote] = field(default_factory=dict)
    victims_by_dns: Dict[DnsName, List[DnsName]] = field(default_factory=dict)
    victim_country: Dict[DnsName, str] = field(default_factory=dict)
    # victims with no authoritative response at all (the stale majority)
    silent_victims: List[DnsName] = field(default_factory=list)

    @property
    def victim_domains(self) -> List[DnsName]:
        seen: Dict[DnsName, None] = {}
        for victims in self.victims_by_dns.values():
            for victim in victims:
                seen.setdefault(victim, None)
        return list(seen)

    @property
    def countries(self) -> List[str]:
        return sorted(
            {self.victim_country[v] for v in self.victim_domains if v in self.victim_country}
        )

    def prices(self) -> List[float]:
        return sorted(
            quote.price_usd
            for quote in self.available.values()
            if quote.price_usd is not None
        )

    def price_stats(self) -> Dict[str, float]:
        prices = self.prices()
        if not prices:
            return {}
        mid = len(prices) // 2
        median = (
            prices[mid]
            if len(prices) % 2
            else (prices[mid - 1] + prices[mid]) / 2
        )
        return {"min": prices[0], "median": median, "max": prices[-1]}


class DelegationAnalysis:
    """Classifies delegations and scans the defects for hijack risk."""

    def __init__(
        self,
        dataset: MeasurementDataset,
        registrar: Optional[Registrar] = None,
        government_suffixes: Optional[Mapping[str, DnsName]] = None,
    ) -> None:
        self._dataset = dataset
        self._registrar = registrar
        self._gov_suffixes = dict(government_suffixes or {})
        self._reports: Optional[Dict[DnsName, DefectReport]] = None

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, result: ProbeResult) -> DefectReport:
        """Verdict for one domain (requires a non-empty parent answer)."""
        defective = tuple(
            hostname
            for hostname, server in result.servers.items()
            if server.defective
        )
        in_parent = tuple(h for h in defective if h in result.parent_ns)
        if not result.responsive:
            verdict = DelegationClass.FULL
        elif defective:
            verdict = DelegationClass.PARTIAL
        else:
            verdict = DelegationClass.HEALTHY
        confidence = "confirmed"
        if defective and all(
            result.servers[h].defect_confidence == "provisional"
            for h in defective
        ):
            confidence = "provisional"
        return DefectReport(
            domain=result.domain,
            iso2=result.iso2,
            verdict=verdict,
            defective_ns=defective,
            defective_in_parent=in_parent,
            confidence=confidence,
        )

    def reports(self) -> Dict[DnsName, DefectReport]:
        """Per-domain verdicts, swept from the columnar store.

        Equivalent to running :meth:`classify` over every domain with
        a non-empty parent answer (the fused column pass computed the
        same verdicts once for the whole dataset).
        """
        if self._reports is None:
            columns = self._dataset.columns
            reports: Dict[DnsName, DefectReport] = {}
            by_code = DelegationClass.BY_CODE
            # Frozen-dataclass construction pays one object.__setattr__
            # per field; at thousands of reports per sweep that is a
            # visible slice of the analysis phase, so build the
            # instance dict directly.  The result is indistinguishable
            # from normal construction (still frozen, still eq/repr).
            new = object.__new__
            for domain, iso2, code, defective, in_parent, provisional in zip(
                columns.domains,
                columns.iso2,
                columns.defect_verdict,
                columns.defective_ns,
                columns.defective_in_parent,
                columns.defect_provisional,
            ):
                if code == UNCLASSIFIED:
                    continue
                report = new(DefectReport)
                report.__dict__.update(
                    domain=domain,
                    iso2=iso2,
                    verdict=by_code[code],
                    defective_ns=defective,
                    defective_in_parent=in_parent,
                    confidence=(
                        "provisional" if provisional else "confirmed"
                    ),
                )
                reports[domain] = report
            self._reports = reports
        return self._reports

    # ------------------------------------------------------------------
    # Figure 10: prevalence
    # ------------------------------------------------------------------
    def prevalence(self) -> Dict[str, float]:
        """Overall shares: any / partial-only / full (paper: 29.5%,
        25.4%, ~4%), over domains with a non-empty parent response."""
        column = self._dataset.columns.defect_verdict
        total = len(column) - column.count(UNCLASSIFIED)
        if not total:
            return {"any": 0.0, "partial": 0.0, "full": 0.0}
        partial = column.count(DEFECT_PARTIAL)
        full = column.count(DEFECT_FULL)
        return {
            "any": (partial + full) / total,
            "partial": partial / total,
            "full": full / total,
        }

    def prevalence_bounds(self) -> Dict[str, float]:
        """Bounds on the any-defect share, by evidence quality.

        ``lower`` counts only *confirmed* defects (positive evidence or
        two-round silence); ``upper`` additionally counts provisional
        ones (single-round soft failure, indistinguishable from a
        transient outage).  With the §III-B retry round enabled the gap
        collapses to near zero — every surviving silence is two-round —
        which is exactly the over-counting bound the retry exists to
        provide.
        """
        columns = self._dataset.columns
        column = columns.defect_verdict
        total = len(column) - column.count(UNCLASSIFIED)
        if not total:
            return {"lower": 0.0, "upper": 0.0}
        any_defect = column.count(DEFECT_PARTIAL) + column.count(DEFECT_FULL)
        confirmed = any_defect - columns.defect_provisional.count(1)
        return {"lower": confirmed / total, "upper": any_defect / total}

    def prevalence_parent_only(self) -> float:
        """Share with a defective nameserver among the parent-listed
        set specifically (the paper's Figure-10a framing)."""
        columns = self._dataset.columns
        total = 0
        affected = 0
        for code, in_parent in zip(
            columns.defect_verdict, columns.defective_in_parent
        ):
            if code == UNCLASSIFIED:
                continue
            total += 1
            if in_parent or code == DEFECT_FULL:
                affected += 1
        return affected / total if total else 0.0

    def figure10_by_country(self) -> Dict[str, Dict[str, float]]:
        """ISO2 → {any, partial, full} shares."""
        columns = self._dataset.columns
        # ISO2 → [total, partial, full]
        grouped: Dict[str, List[int]] = {}
        for iso2, code in zip(columns.iso2, columns.defect_verdict):
            if code == UNCLASSIFIED:
                continue
            counts = grouped.setdefault(iso2, [0, 0, 0])
            counts[0] += 1
            if code == DEFECT_PARTIAL:
                counts[1] += 1
            elif code == DEFECT_FULL:
                counts[2] += 1
        out: Dict[str, Dict[str, float]] = {}
        for iso2, (total, partial, full) in grouped.items():
            out[iso2] = {
                "domains": float(total),
                "any": (partial + full) / total,
                "partial": partial / total,
                "full": full / total,
            }
        return out

    # ------------------------------------------------------------------
    # Figures 11/12: hijack exposure
    # ------------------------------------------------------------------
    def _is_government_name(self, hostname: DnsName, iso2: str) -> bool:
        suffix = self._gov_suffixes.get(iso2)
        return suffix is not None and hostname.is_subdomain_of(suffix)

    def hijack_exposure(self) -> HijackExposure:
        """Scan defective entries for registrable nameserver domains.

        Only nameservers outside the victim's own government namespace
        are checked (the paper found most defects involve governments'
        own names and pose no third-party registration risk).
        """
        if self._registrar is None:
            raise ValueError("hijack scan needs a registrar")
        exposure = HijackExposure()
        quote_cache: Dict[DnsName, Quote] = {}
        for report in self.reports().values():
            if not report.any_defect:
                continue
            result = self._dataset[report.domain]
            for hostname in report.defective_ns:
                if len(hostname) <= 1:
                    continue
                if self._is_government_name(hostname, report.iso2):
                    continue
                server = result.servers.get(hostname)
                if server is not None and server.resolvable:
                    # The domain behind it clearly still exists.
                    continue
                quote = quote_cache.get(hostname)
                if quote is None:
                    quote = self._registrar.check(hostname)
                    quote_cache[hostname] = quote
                if not quote.available:
                    continue
                dns_domain = quote.domain
                exposure.available[dns_domain] = quote
                victims = exposure.victims_by_dns.setdefault(dns_domain, [])
                if report.domain not in victims:
                    victims.append(report.domain)
                exposure.victim_country[report.domain] = report.iso2
                if (
                    report.verdict == DelegationClass.FULL
                    and report.domain not in exposure.silent_victims
                ):
                    exposure.silent_victims.append(report.domain)
        return exposure

    def figure11_by_country(
        self, exposure: Optional[HijackExposure] = None
    ) -> Dict[str, Tuple[int, int]]:
        """ISO2 → (#affected domains, #available d_ns used there)."""
        if exposure is None:
            exposure = self.hijack_exposure()
        victims_per_country: Dict[str, int] = {}
        dns_per_country: Dict[str, set] = {}
        for dns_domain, victims in exposure.victims_by_dns.items():
            for victim in victims:
                iso2 = exposure.victim_country.get(victim)
                if iso2 is None:
                    continue
                victims_per_country[iso2] = victims_per_country.get(iso2, 0) + 1
                dns_per_country.setdefault(iso2, set()).add(dns_domain)
        return {
            iso2: (victims_per_country[iso2], len(dns_per_country[iso2]))
            for iso2 in victims_per_country
        }
