"""Sharded multiprocess campaign execution with a deterministic merge.

The concurrent engine (PR 2) collapsed *simulated* time ~10× but left
wall-clock nearly untouched: a campaign is CPU-bound inside one Python
process, and the paper-scale target list (~147k domains) makes
wall-clock the binding constraint for the ROADMAP's re-run-at-many-
seeds ambition.  DNS measurement is embarrassingly parallel at the
domain level (ZDNS's core observation), so this module partitions the
target list into K shards and runs each in its own worker process.

Determinism contract
--------------------
The merged dataset digest is **identical for every shard count,
including K=1, and identical to the single-process concurrent engine**.
Three mechanisms carry that promise:

1. **Stable shard membership.**  A domain's shard is
   ``sha256(registered_domain) % K`` — a pure function of the domain
   and K, independent of target ordering, of Python's per-process hash
   seed, and of the divisor layout (going from K=4 to K=8 moves
   domains, but two runs at the same K always agree).  Hashing the
   *registered* domain co-locates nested targets with their parent.
2. **Per-domain purity.**  After the prober's deterministic warm phase
   freezes the zone-cut cache (:meth:`repro.dns.cache.ZoneCutCache.freeze`),
   every domain's walk cost and observations are a pure function of
   (domain, world): no cross-domain cache races, no mid-campaign TTL
   expiry, no interleaving effects.  Shard-local warming covers the
   same ancestor chains full warming would (every enclosing cut of a
   target lies on its own parent's walk), so all layouts freeze
   equivalent views.  In default worlds the network RNG is never drawn
   (no lossy hosts, fixed latency), completing the purity argument; for
   chaos/lossy worlds each worker derives per-shard RNG streams, which
   keeps runs *reproducible* per (seed, K) though not K-invariant.
3. **Order-free merge.**  Workers return serialized results; the
   parent merges them back into the campaign's sorted admission order
   (:meth:`repro.core.dataset.MeasurementDataset.merge`), so worker
   completion order is invisible.

Workers prefer the ``fork`` start method (the parent's generated world
is inherited copy-on-write — no pickling, no re-generation); under
``spawn`` each worker regenerates the world from ``world.config`` and
re-derives the identical target list.  Journals are per-shard files
under a manifest (see :mod:`repro.core.journal`).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import random
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..dns.errors import NameError_
from ..dns.name import DnsName
from ..net.events import CampaignAborted
from .dataset import MeasurementDataset
from .journal import (
    CampaignJournal,
    campaign_digest,
    result_from_dict,
    result_to_dict,
    shard_journal_path,
    write_shard_manifest,
)

__all__ = [
    "ProcessCampaignRunner",
    "ShardStats",
    "government_suffixes",
    "partition",
    "shard_index",
    "shard_key",
]


# ----------------------------------------------------------------------
# Shard membership
# ----------------------------------------------------------------------
def government_suffixes(seeds) -> FrozenSet[DnsName]:
    """The public-suffix set sharding keys off: every seed that is a
    reserved government suffix (``gov.au``) rather than a registered
    domain (``regjeringen.no``)."""
    return frozenset(seed.d_gov for seed in seeds if seed.is_suffix)


def shard_key(domain: DnsName, suffixes: FrozenSet[DnsName]) -> DnsName:
    """The name a domain is sharded by: its registered domain.

    Keying on the registered domain rather than the FQDN co-locates a
    registered domain with everything beneath it, so related targets
    land in one worker.  Domains with no registrable form (TLD-level
    oddities) shard by their own name.
    """
    try:
        return domain.registered_domain(suffixes)
    except NameError_:
        return domain


def shard_index(
    domain: DnsName, shards: int, suffixes: FrozenSet[DnsName]
) -> int:
    """Which of ``shards`` shards owns ``domain``.

    sha256, never :func:`hash`: builtin string hashing is randomized
    per process (PYTHONHASHSEED), and shard membership must be a pure
    function of the domain.
    """
    digest = hashlib.sha256(str(shard_key(domain, suffixes)).encode()).digest()
    return int.from_bytes(digest[:8], "big") % shards


def partition(
    targets: Dict[DnsName, str],
    shards: int,
    suffixes: FrozenSet[DnsName],
) -> List[Dict[DnsName, str]]:
    """Split {domain → ISO2} into ``shards`` disjoint maps, each in
    sorted (admission) order."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    parts: List[Dict[DnsName, str]] = [{} for _ in range(shards)]
    for domain in sorted(targets):
        parts[shard_index(domain, shards, suffixes)][domain] = targets[domain]
    return parts


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------
@dataclass
class ShardStats:
    """Per-worker campaign accounting reported back to the parent."""

    shard: int
    targets: int
    queries_sent: int = 0
    warm_queries: int = 0
    network_queries: int = 0
    timeouts: int = 0
    simulated_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "targets": self.targets,
            "queries_sent": self.queries_sent,
            "warm_queries": self.warm_queries,
            "network_queries": self.network_queries,
            "timeouts": self.timeouts,
            "simulated_seconds": self.simulated_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardStats":
        return cls(**data)


@dataclass
class _ShardTask:
    """Everything one worker needs.  Under ``spawn`` this is pickled,
    so the fork-only fields (the live world and pre-partitioned
    targets) are stripped first; the worker then regenerates both."""

    index: int
    shards: int
    seed: int
    scale: float
    config: Any  # ProbeConfig; typed loosely to avoid an import cycle
    chaos_profile: Optional[str]
    journal_path: Optional[str]
    kill_at_event: Optional[int]
    epoch: int = 0
    subset: Optional[Tuple[str, ...]] = None
    world: Any = field(default=None, repr=False)
    shard_targets: Optional[Dict[DnsName, str]] = field(
        default=None, repr=False
    )

    def materialize(self) -> Tuple[Any, Dict[DnsName, str]]:
        if self.world is not None and self.shard_targets is not None:
            return self.world, self.shard_targets
        # Spawn path: regenerate the identical world and re-derive the
        # identical target list (both pure functions of seed/scale),
        # then take this worker's slice of the canonical partition.
        # Epoch k's world is seed/scale world plus churn plans 1..k —
        # also pure, so spawned workers converge with forked ones.
        from ..worldgen.config import WorldConfig
        from ..worldgen.generator import WorldGenerator
        from .study import GovernmentDnsStudy

        world = WorldGenerator(
            WorldConfig(seed=self.seed, scale=self.scale)
        ).generate()
        if self.epoch:
            from ..worldgen.churn import advance_world

            for step in range(1, self.epoch + 1):
                advance_world(world, step)
        study = GovernmentDnsStudy(world, probe_config=self.config)
        targets = study.targets()
        if self.subset is not None:
            wanted = set(self.subset)
            targets = {
                domain: iso2
                for domain, iso2 in targets.items()
                if str(domain) in wanted
            }
        suffixes = government_suffixes(study.seeds().values())
        parts = partition(targets, self.shards, suffixes)
        return world, parts[self.index]


def _install_chaos(world, profile: str, seed: int) -> None:
    from ..dns.message import Rcode, make_response
    from ..net.chaos import build_profile

    world.network.chaos = build_profile(
        profile,
        sorted(world.network.addresses()),
        seed=seed,
        start=world.clock.now,
        refusal_factory=lambda query: make_response(
            query, rcode=Rcode.REFUSED
        ),
    )


def _shard_worker(task: _ShardTask, conn) -> None:
    """Run one shard's campaign and ship results over ``conn``.

    Every exit path reports: success sends ``("ok", results, stats)``,
    the kill harness sends ``("aborted", fired)``, and any other
    failure sends ``("error", traceback)`` before re-raising so the
    parent never hangs on a silent corpse.
    """
    try:
        from .probe import ActiveProber

        world, shard_targets = task.materialize()
        network = world.network
        if task.chaos_profile is not None and network.chaos is None:
            _install_chaos(world, task.chaos_profile, task.seed)
        if task.shards > 1:
            # Disjoint derived streams per worker: sharing the base
            # stream would make each worker's draws depend on traffic
            # it never sees.  K=1 keeps the original streams so the
            # single-shard runner is bit-identical to the in-process
            # engine even on chaos/lossy worlds.
            material = f"{task.seed}:shard:{task.index}"
            network.restore_rng_state(random.Random(material).getstate())
            if network.chaos is not None:
                network.chaos.derive_rng(task.index)
        journal: Optional[CampaignJournal] = None
        if task.journal_path is not None:
            path = shard_journal_path(task.journal_path, task.index)
            if os.path.exists(path):
                journal = CampaignJournal.resume(path)
            else:
                journal = CampaignJournal.create(path)
        if task.kill_at_event is not None:
            network.events.abort_after = (
                network.events.fired + task.kill_at_event
            )
        prober = ActiveProber(
            network,
            world.root_addresses,
            world.probe_source,
            config=task.config,
            journal=journal,
        )
        started_at = world.clock.now
        base_queries = network.stats.queries_sent
        base_timeouts = network.stats.timeouts
        dataset = prober.probe_all(shard_targets)
        stats = ShardStats(
            shard=task.index,
            targets=len(shard_targets),
            queries_sent=prober.queries_sent,
            warm_queries=prober.warm_queries,
            network_queries=network.stats.queries_sent - base_queries,
            timeouts=network.stats.timeouts - base_timeouts,
            simulated_seconds=world.clock.now - started_at,
        )
        conn.send(
            (
                "ok",
                [result_to_dict(result) for result in dataset],
                stats.to_dict(),
            )
        )
    except CampaignAborted as aborted:
        conn.send(("aborted", aborted.fired))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        raise
    finally:
        conn.close()


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ProcessCampaignRunner:
    """Partition, fan out, collect, merge — deterministically.

    Parameters mirror what :meth:`GovernmentDnsStudy.dataset` already
    has in hand: the generated world, the target list, the probe
    config, and the suffix set the shard hash keys off.
    """

    def __init__(
        self,
        world,
        targets: Dict[DnsName, str],
        config,
        shards: int,
        suffixes: FrozenSet[DnsName],
        journal_path: Optional[str] = None,
        kill_at_event: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._world = world
        self._targets = dict(targets)
        self._config = config
        self.shards = shards
        self._suffixes = suffixes
        self._journal_path = journal_path
        self._kill_at_event = kill_at_event
        # Longitudinal context: which measurement epoch these targets
        # belong to.  Spawned workers replay churn to this epoch, and
        # merge-collision errors carry the epoch label (the world passed
        # in must already be advanced to it).
        self._epoch = epoch
        self.shard_stats: List[ShardStats] = []

    # ------------------------------------------------------------------
    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def _chaos_profile_name(self) -> Optional[str]:
        chaos = self._world.network.chaos
        return chaos.name if chaos is not None else None

    def _tasks(self, forked: bool) -> List[_ShardTask]:
        from ..net.chaos import PROFILES

        chaos_name = self._chaos_profile_name()
        if not forked and chaos_name is not None and chaos_name not in PROFILES:
            raise ValueError(
                f"cannot shard a custom chaos schedule ({chaos_name!r}) "
                f"without the fork start method: workers rebuild chaos "
                f"from its profile name"
            )
        parts = partition(self._targets, self.shards, self._suffixes)
        config = self._world.config
        # Under spawn, epoch probes ship their (possibly partial) target
        # subset by name so workers can slice the re-derived full list.
        subset = (
            tuple(sorted(str(domain) for domain in self._targets))
            if not forked and self._epoch is not None
            else None
        )
        return [
            _ShardTask(
                index=index,
                shards=self.shards,
                seed=config.seed,
                scale=config.scale,
                config=self._config,
                chaos_profile=chaos_name,
                journal_path=self._journal_path,
                kill_at_event=self._kill_at_event,
                epoch=self._epoch or 0,
                subset=subset,
                world=self._world if forked else None,
                shard_targets=parts[index] if forked else None,
            )
            for index in range(self.shards)
        ]

    # ------------------------------------------------------------------
    def collect(self) -> List[Tuple[List[Dict[str, Any]], ShardStats]]:
        """Fan out the workers and gather per-shard payloads (in shard
        order).  Raises :class:`CampaignAborted` if any worker hit the
        kill harness, RuntimeError if any worker failed."""
        if self._journal_path is not None:
            chaos_name = self._chaos_profile_name()
            write_shard_manifest(
                self._journal_path,
                self.shards,
                campaign_digest(
                    self._targets, self._config.identity(), chaos_name
                ),
            )
        context = self._context()
        forked = context.get_start_method() == "fork"
        tasks = self._tasks(forked)
        payloads: Dict[int, Tuple[List[Dict[str, Any]], ShardStats]] = {}
        pending: Dict[Any, Tuple[int, Any]] = {}
        workers = []
        for task in tasks:
            if not task.shard_targets and forked:
                # Nothing to probe (K exceeds distinct shard keys):
                # skip the process, synthesize an empty payload.
                payloads[task.index] = (
                    [],
                    ShardStats(shard=task.index, targets=0),
                )
                continue
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_shard_worker, args=(task, sender), daemon=True
            )
            process.start()
            sender.close()
            pending[receiver] = (task.index, process)
            workers.append(process)
        aborted_fired: List[int] = []
        errors: List[Tuple[int, str]] = []
        try:
            while pending:
                ready = _connection_wait(list(pending), timeout=5.0)
                if not ready:
                    for receiver in list(pending):
                        index, process = pending[receiver]
                        if not process.is_alive() and not receiver.poll():
                            raise RuntimeError(
                                f"shard {index} worker died (exit code "
                                f"{process.exitcode}) without reporting"
                            )
                    continue
                for receiver in ready:
                    index, process = pending.pop(receiver)
                    try:
                        message = receiver.recv()
                    except EOFError:
                        raise RuntimeError(
                            f"shard {index} worker closed its pipe "
                            f"without reporting (exit code "
                            f"{process.exitcode})"
                        )
                    finally:
                        receiver.close()
                    kind = message[0]
                    if kind == "ok":
                        payloads[index] = (
                            message[1],
                            ShardStats.from_dict(message[2]),
                        )
                    elif kind == "aborted":
                        aborted_fired.append(message[1])
                    else:
                        errors.append((index, message[1]))
        finally:
            for process in workers:
                process.join(timeout=30.0)
        if errors:
            detail = "\n".join(
                f"--- shard {index} ---\n{trace}"
                for index, trace in sorted(errors)
            )
            raise RuntimeError(f"sharded campaign worker(s) failed:\n{detail}")
        if aborted_fired:
            raise CampaignAborted(sum(aborted_fired))
        return [payloads[index] for index in sorted(payloads)]

    def merge(
        self, collected: List[Tuple[List[Dict[str, Any]], ShardStats]]
    ) -> MeasurementDataset:
        """Deserialize per-shard results and restore admission order."""
        self.shard_stats = [stats for _, stats in collected]
        parts = [
            MeasurementDataset(
                {
                    result.domain: result
                    for result in (
                        result_from_dict(entry) for entry in entries
                    )
                }
            )
            for entries, _ in collected
        ]
        merged = MeasurementDataset.merge(
            parts,
            labels=[f"shard {index}" for index in range(len(parts))],
            epoch=self._epoch,
        )
        if len(merged) != len(self._targets):
            raise RuntimeError(
                f"sharded merge lost domains: {len(merged)} merged "
                f"!= {len(self._targets)} targets"
            )
        return merged

    def run(self) -> MeasurementDataset:
        return self.merge(self.collect())
