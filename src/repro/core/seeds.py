"""Seed-domain selection (paper §III-A).

Given the UN E-Government Knowledge Base (national-portal links plus
the member-states-questionnaire domains), produce each country's
``d_gov``: the government-reserved suffix when the ccTLD registry's
documentation verifies the reservation, otherwise the registered
domain, with government control confirmed via whois (and datable via
the Web-Archive index).

Reproduces the paper's §III-A decisions:

- portal links that do not resolve fall back to the MSQ domain;
- a portal link whose domain belongs to a third party (the ads case)
  falls back to the MSQ;
- suffixes whose reservation cannot be verified in registry docs
  (``gov.la``-style cases) yield a registered-domain seed;
- a registered domain outside any reserved suffix (``regjeringen.no``)
  is accepted when whois ties it to the government.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from ..dns.errors import NameError_
from ..dns.name import DnsName
from ..dns.rdata import RRType
from ..dns.resolver import Resolver
from ..registry.tld import TldRegistry
from ..registry.whois import ArchiveIndex, WhoisDatabase

__all__ = ["Seed", "SeedSelector"]


@dataclass(frozen=True)
class Seed:
    """One country's d_gov."""

    iso2: str
    d_gov: DnsName
    is_suffix: bool  # True: reserved suffix; False: registered domain
    source: str  # "link" | "msq" | "registry_fallback"
    government_verified: bool

    @property
    def suffix_text(self) -> str:
        return str(self.d_gov).rstrip(".")


class SeedSelector:
    """Turns Knowledge-Base rows into verified seeds."""

    def __init__(
        self,
        resolver: Resolver,
        tld_registry: TldRegistry,
        whois: WhoisDatabase,
        archive: Optional[ArchiveIndex] = None,
    ) -> None:
        self._resolver = resolver
        self._tlds = tld_registry
        self._whois = whois
        self._archive = archive

    # ------------------------------------------------------------------
    def _resolves(self, fqdn: DnsName) -> bool:
        return self._resolver.resolve(fqdn, RRType.A).ok

    def _government_owns(self, domain: DnsName) -> bool:
        record = self._whois.lookup(domain)
        return record is not None and record.registrant_is_government

    def _registered_domain(self, fqdn: DnsName) -> Optional[DnsName]:
        try:
            return fqdn.registered_domain(self._tlds.public_suffixes())
        except NameError_:
            return None

    def _enclosing_suffix(self, fqdn: DnsName) -> Optional[DnsName]:
        """Longest public suffix enclosing (but not equal to) the FQDN."""
        suffixes = self._tlds.public_suffixes()
        for candidate in fqdn.ancestors(include_self=False):
            if candidate in suffixes and candidate.level >= 2:
                return candidate
        return None

    def _documented_government_suffix(self, cctld: DnsName) -> Optional[DnsName]:
        policy = self._tlds.get(cctld)
        if policy is None:
            return None
        for suffix_policy in policy.suffixes.values():
            if suffix_policy.government_reserved and suffix_policy.documented:
                return suffix_policy.suffix
        return None

    # ------------------------------------------------------------------
    def select_for(
        self, iso2: str, portal_fqdn: str, msq_fqdn: str
    ) -> Optional[Seed]:
        """Pick the seed for one country, or None when nothing usable
        can be verified."""
        chosen: Optional[DnsName] = None
        source = "link"
        try:
            link_name = DnsName.parse(portal_fqdn)
        except NameError_:
            link_name = None

        if link_name is not None and self._resolves(link_name):
            registered = self._registered_domain(link_name)
            if registered is not None and not self._government_owns(registered):
                suffix = self._enclosing_suffix(link_name)
                if suffix is None or not self._tlds.is_government_reserved(suffix):
                    # The ads case: the link's domain belongs to someone
                    # else entirely; trust the questionnaire instead.
                    link_name = None
            if link_name is not None:
                chosen = link_name

        if chosen is None:
            try:
                msq_name = DnsName.parse(msq_fqdn)
            except NameError_:
                msq_name = None
            if msq_name is not None and self._resolves(msq_name):
                chosen = msq_name
                source = "msq"

        if chosen is None:
            # Neither link nor MSQ works; a researcher would still check
            # the registry's documentation for a reserved suffix.
            if link_name is None and not portal_fqdn:
                return None
            tld_label = (msq_fqdn or portal_fqdn).rstrip(".").rsplit(".", 1)[-1]
            try:
                cctld = DnsName.parse(tld_label)
            except NameError_:
                return None
            suffix = self._documented_government_suffix(cctld)
            if suffix is None:
                return None
            return Seed(
                iso2=iso2,
                d_gov=suffix,
                is_suffix=True,
                source="registry_fallback",
                government_verified=True,
            )

        # Suffix extraction and verification.
        suffix = self._enclosing_suffix(chosen)
        if suffix is not None and self._tlds.is_government_reserved(suffix):
            return Seed(
                iso2=iso2,
                d_gov=suffix,
                is_suffix=True,
                source=source,
                government_verified=True,
            )
        registered = self._registered_domain(chosen)
        if registered is None:
            return None
        verified = self._government_owns(registered)
        if not verified and self._archive is not None:
            verified = (
                self._archive.earliest_government_snapshot(registered)
                is not None
            )
        if not verified:
            return None
        return Seed(
            iso2=iso2,
            d_gov=registered,
            is_suffix=False,
            source=source,
            government_verified=verified,
        )

    def select_all(
        self, knowledge_base: Mapping[str, object]
    ) -> Dict[str, Seed]:
        """Seeds for every Knowledge-Base entry that yields one.

        ``knowledge_base`` maps ISO2 → an object with ``portal_fqdn``
        and ``msq_fqdn`` attributes (duck-typed to avoid a worldgen
        dependency).
        """
        seeds: Dict[str, Seed] = {}
        for iso2, entry in knowledge_base.items():
            seed = self.select_for(
                iso2,
                getattr(entry, "portal_fqdn"),
                getattr(entry, "msq_fqdn"),
            )
            if seed is not None:
                seeds[iso2] = seed
        return seeds
