"""Remediation toolbox (paper §V-B): CSYNC, EPP, registry locks,
and measure→fix→re-measure sweeps."""

from .csync import CsyncProcessor, CsyncRecord, SyncOutcome
from .epp import EppResult, EppServer, EppSession, RegistryLockError
from .sweeper import RemediationReport, RemediationSweeper

__all__ = [
    "CsyncProcessor",
    "CsyncRecord",
    "SyncOutcome",
    "EppResult",
    "EppServer",
    "EppSession",
    "RegistryLockError",
    "RemediationReport",
    "RemediationSweeper",
]
