"""Registrar↔registry provisioning, EPP (RFC 5730) style, with
registry locks.

The paper's §V-B names two institutional defenses:

- **EPP** lets registrars update delegations at the registry in an
  automated way — which is how stale delegations *should* get fixed;
- **registry locks** (the Krebs/CSC recommendation) deliberately break
  that automation for high-value domains: updates require explicit
  human-verified unlock, defeating the registrar-compromise hijacks the
  paper cites (Sea Turtle and friends).

This module models the command surface: sessions, update commands that
edit the parent zone's NS sets, lock/unlock with out-of-band
verification, and an audit log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dns.name import DnsName
from ..dns.rdata import NS, RRType
from ..dns.rrset import RRset
from ..dns.zone import Zone

__all__ = ["EppResult", "EppServer", "EppSession", "RegistryLockError"]


class RegistryLockError(Exception):
    """Update refused because the object is registry-locked."""


@dataclass(frozen=True)
class EppResult:
    """Outcome of one EPP command (code semantics follow RFC 5730)."""

    code: int
    message: str

    @property
    def ok(self) -> bool:
        return 1000 <= self.code < 2000


@dataclass
class _AuditEntry:
    registrar: str
    command: str
    target: str
    ok: bool


class EppServer:
    """The registry side: holds the parent zone, locks, and the log.

    Parameters
    ----------
    verify_unlock:
        Out-of-band verification callback for unlock requests (phone
        call, in-person — whatever the registry's lock product
        requires).  Defaults to rejecting, which is what makes the lock
        meaningful.
    """

    def __init__(
        self,
        parent_zone: Zone,
        authorized_registrars: Sequence[str],
        verify_unlock: Optional[Callable[[DnsName, str], bool]] = None,
    ) -> None:
        self.parent_zone = parent_zone
        self._registrars = set(authorized_registrars)
        self._verify_unlock = (
            verify_unlock if verify_unlock is not None else (lambda d, r: False)
        )
        self._locks: Dict[DnsName, str] = {}  # domain → locking registrar
        self.audit_log: List[_AuditEntry] = []

    # ------------------------------------------------------------------
    def login(self, registrar: str) -> "EppSession":
        if registrar not in self._registrars:
            raise PermissionError(f"unknown registrar: {registrar!r}")
        return EppSession(self, registrar)

    def is_locked(self, domain: DnsName) -> bool:
        return domain in self._locks

    def _log(self, registrar: str, command: str, target: DnsName, ok: bool) -> None:
        self.audit_log.append(
            _AuditEntry(registrar, command, str(target), ok)
        )

    # ------------------------------------------------------------------
    # Command implementations (invoked through sessions)
    # ------------------------------------------------------------------
    def _update_ns(
        self,
        registrar: str,
        domain: DnsName,
        nameservers: Tuple[DnsName, ...],
    ) -> EppResult:
        if self.is_locked(domain):
            self._log(registrar, "update", domain, ok=False)
            return EppResult(2304, "object status prohibits operation (serverUpdateProhibited)")
        if not nameservers:
            self._log(registrar, "update", domain, ok=False)
            return EppResult(2306, "parameter policy error: empty NS set")
        existing = self.parent_zone.get(domain, RRType.NS)
        ttl = existing.ttl if existing is not None else self.parent_zone.default_ttl
        self.parent_zone.add(
            RRset(domain, RRType.NS, ttl, tuple(NS(h) for h in nameservers))
        )
        self._log(registrar, "update", domain, ok=True)
        return EppResult(1000, "command completed successfully")

    def _delete(self, registrar: str, domain: DnsName) -> EppResult:
        if self.is_locked(domain):
            self._log(registrar, "delete", domain, ok=False)
            return EppResult(2304, "object status prohibits operation")
        if self.parent_zone.get(domain, RRType.NS) is None:
            self._log(registrar, "delete", domain, ok=False)
            return EppResult(2303, "object does not exist")
        self.parent_zone.remove(domain, RRType.NS)
        self._log(registrar, "delete", domain, ok=True)
        return EppResult(1000, "command completed successfully")

    def _lock(self, registrar: str, domain: DnsName) -> EppResult:
        self._locks[domain] = registrar
        self._log(registrar, "lock", domain, ok=True)
        return EppResult(1000, "registry lock applied")

    def _unlock(self, registrar: str, domain: DnsName) -> EppResult:
        holder = self._locks.get(domain)
        if holder is None:
            return EppResult(2303, "object is not locked")
        if not self._verify_unlock(domain, registrar):
            self._log(registrar, "unlock", domain, ok=False)
            return EppResult(2308, "out-of-band verification failed")
        del self._locks[domain]
        self._log(registrar, "unlock", domain, ok=True)
        return EppResult(1000, "registry lock removed")


@dataclass
class EppSession:
    """An authenticated registrar session."""

    server: EppServer
    registrar: str

    def update_ns(
        self, domain: DnsName, nameservers: Sequence[DnsName]
    ) -> EppResult:
        """Replace a delegation's NS set — the stale-record fix."""
        return self.server._update_ns(
            self.registrar, domain, tuple(nameservers)
        )

    def delete_delegation(self, domain: DnsName) -> EppResult:
        """Remove a delegation entirely — the zombie-domain fix."""
        return self.server._delete(self.registrar, domain)

    def lock(self, domain: DnsName) -> EppResult:
        """Apply a registry lock (serverUpdateProhibited)."""
        return self.server._lock(self.registrar, domain)

    def unlock(self, domain: DnsName) -> EppResult:
        """Request unlock; subject to out-of-band verification."""
        return self.server._unlock(self.registrar, domain)
