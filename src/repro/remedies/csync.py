"""Child-to-parent synchronization, RFC-7477 (CSYNC) style.

The paper's §V-B points at CSYNC as the standardized fix for
parent/child NS-set drift: a child zone publishes a CSYNC record
stating which of its RRsets the parent may copy; the parent-side
operator polls children and applies updates.  The RFC's safety valve is
reproduced too — when the ``immediate`` flag is clear, the parent MUST
obtain out-of-band confirmation from the child operator before acting,
precisely to keep the mechanism from becoming a hijack vector itself.

This module implements the record, the parent-side scanner, and the
application step against our zone model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..dns.name import DnsName
from ..dns.rdata import NS, RRType
from ..dns.rrset import RRset
from ..dns.zone import Zone

__all__ = ["CsyncRecord", "SyncOutcome", "CsyncProcessor"]

# CSYNC "type bit map" — we model only the NS bit, the one the paper's
# findings concern.
TYPE_NS = "NS"


@dataclass(frozen=True)
class CsyncRecord:
    """A child zone's synchronization directive.

    ``immediate``: parent may apply the change without out-of-band
    confirmation.  ``soa_serial``: the child SOA serial this directive
    was published at (guards against replays of stale directives).
    """

    zone: DnsName
    soa_serial: int
    immediate: bool = False
    types: Tuple[str, ...] = (TYPE_NS,)

    def covers(self, rrtype: str) -> bool:
        return rrtype in self.types


@dataclass
class SyncOutcome:
    """Result of attempting to synchronize one delegation."""

    zone: DnsName
    applied: bool
    reason: str
    old_ns: Tuple[DnsName, ...] = ()
    new_ns: Tuple[DnsName, ...] = ()


class CsyncProcessor:
    """Parent-side CSYNC scanning and application.

    Parameters
    ----------
    confirm:
        Callback used for non-immediate directives: given the child
        zone name, return True when the child operator confirmed the
        change out-of-band.  Defaults to refusing (the RFC-safe
        default).
    """

    def __init__(
        self,
        confirm: Optional[Callable[[DnsName], bool]] = None,
    ) -> None:
        self._confirm = confirm if confirm is not None else (lambda _zone: False)
        self._directives: Dict[DnsName, CsyncRecord] = {}
        self._last_serial: Dict[DnsName, int] = {}

    # ------------------------------------------------------------------
    # Child side: publish a directive
    # ------------------------------------------------------------------
    def publish(self, record: CsyncRecord) -> None:
        """Register a child's CSYNC directive (as if served by its
        authoritative nameservers)."""
        self._directives[record.zone] = record

    def directive_for(self, zone: DnsName) -> Optional[CsyncRecord]:
        return self._directives.get(zone)

    # ------------------------------------------------------------------
    # Parent side: scan and apply
    # ------------------------------------------------------------------
    def sync_delegation(
        self,
        parent_zone: Zone,
        child_zone: Zone,
    ) -> SyncOutcome:
        """Bring the parent's NS set for one child up to date.

        Applies only when the child published a CSYNC covering NS, the
        serial moved forward, and the immediate flag (or out-of-band
        confirmation) authorizes the change.
        """
        child_name = child_zone.origin
        delegation = parent_zone.get(child_name, RRType.NS)
        if delegation is None:
            return SyncOutcome(
                zone=child_name, applied=False, reason="no delegation in parent"
            )
        directive = self._directives.get(child_name)
        if directive is None:
            return SyncOutcome(
                zone=child_name, applied=False, reason="no CSYNC published"
            )
        if not directive.covers(RRType.NS):
            return SyncOutcome(
                zone=child_name, applied=False, reason="CSYNC does not cover NS"
            )
        last = self._last_serial.get(child_name)
        if last is not None and directive.soa_serial <= last:
            return SyncOutcome(
                zone=child_name,
                applied=False,
                reason=f"stale serial {directive.soa_serial} (≤ {last})",
            )
        child_ns = child_zone.apex_ns
        if child_ns is None:
            return SyncOutcome(
                zone=child_name, applied=False, reason="child has no apex NS"
            )
        # Refuse to copy obviously-broken data (the bare-label typo):
        # propagating it upward would convert a child mistake into a
        # resolution outage.
        if any(len(r.nsdname) == 1 for r in child_ns.rdatas):  # type: ignore[union-attr]
            return SyncOutcome(
                zone=child_name,
                applied=False,
                reason="child NS set contains a single-label name",
            )
        if not directive.immediate and not self._confirm(child_name):
            return SyncOutcome(
                zone=child_name,
                applied=False,
                reason="immediate flag clear and no out-of-band confirmation",
            )

        old = tuple(r.nsdname for r in delegation.rdatas)  # type: ignore[union-attr]
        new = tuple(r.nsdname for r in child_ns.rdatas)  # type: ignore[union-attr]
        if set(old) == set(new):
            self._last_serial[child_name] = directive.soa_serial
            return SyncOutcome(
                zone=child_name,
                applied=False,
                reason="already consistent",
                old_ns=old,
                new_ns=new,
            )
        parent_zone.add(
            RRset(
                child_name,
                RRType.NS,
                delegation.ttl,
                tuple(NS(h) for h in new),
            )
        )
        # In-bailiwick nameservers are unreachable without glue: the
        # update must carry the A records, or the sync would convert a
        # mere inconsistency into a fully defective delegation.
        for hostname in new:
            if not hostname.is_subdomain_of(child_name):
                continue
            glue = child_zone.get(hostname, RRType.A)
            if glue is not None and parent_zone.get(hostname, RRType.A) is None:
                parent_zone.add(glue)
        self._last_serial[child_name] = directive.soa_serial
        return SyncOutcome(
            zone=child_name,
            applied=True,
            reason="synchronized",
            old_ns=old,
            new_ns=new,
        )

    def sweep(
        self,
        parent_zone: Zone,
        children: Dict[DnsName, Zone],
    ) -> List[SyncOutcome]:
        """Synchronize every delegation the parent holds a child for."""
        outcomes = []
        for delegation in list(parent_zone.delegations()):
            child = children.get(delegation.name)
            if child is None:
                continue
            outcomes.append(self.sync_delegation(parent_zone, child))
        return outcomes
