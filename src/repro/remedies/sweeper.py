"""Remediation campaigns: measure → fix → re-measure.

The paper's discussion asks what it would take to clean up the
pathologies it measures.  This module runs that counterfactual inside
the simulator: given a completed study, it applies the §V-B toolbox —

- **EPP delete** for fully defective (zombie) delegations, removing the
  stale records that enable hijacking;
- **EPP NS update** to drop broken nameservers from partially defective
  delegations;
- **CSYNC synchronization** for consistent-but-drifted parent/child NS
  sets;
- **registry locks** for every domain that was found hijack-exposed —

and reports what changed, so a fresh probe campaign can quantify the
cleanup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.delegation import DelegationAnalysis, DelegationClass
from ..core.consistency import ConsistencyAnalysis
from ..core.study import GovernmentDnsStudy
from ..dns.name import DnsName
from ..dns.rdata import RRType
from ..dns.zone import Zone
from .csync import CsyncProcessor, CsyncRecord
from .epp import EppServer

__all__ = ["RemediationReport", "RemediationSweeper"]


@dataclass
class RemediationReport:
    """What a sweep changed."""

    zombies_deleted: List[DnsName] = field(default_factory=list)
    delegations_updated: List[DnsName] = field(default_factory=list)
    synchronized: List[DnsName] = field(default_factory=list)
    locked: List[DnsName] = field(default_factory=list)
    skipped: Dict[DnsName, str] = field(default_factory=dict)

    @property
    def total_changes(self) -> int:
        return (
            len(self.zombies_deleted)
            + len(self.delegations_updated)
            + len(self.synchronized)
            + len(self.locked)
        )


class RemediationSweeper:
    """Applies the remedies toolbox to a studied world."""

    def __init__(self, study: GovernmentDnsStudy) -> None:
        self._study = study
        self._world = study.world
        # One EPP server per government suffix zone, operated by a
        # single accredited "registrar" (the sweep).
        self._epp: Dict[str, EppServer] = {
            iso2: EppServer(
                zone,
                authorized_registrars=("remediation-sweep",),
                verify_unlock=lambda domain, registrar: False,
            )
            for iso2, zone in self._world.suffix_zones.items()
        }
        # Child operators are assumed to confirm CSYNC out-of-band for
        # the sweep (it is acting on their behalf).
        self._csync = CsyncProcessor(confirm=lambda zone: True)

    # ------------------------------------------------------------------
    def _parent_zone_for(self, domain: DnsName, iso2: str) -> Optional[Zone]:
        """The zone actually holding ``domain``'s delegation.

        The *zone* parent is not always the *name* parent (deep names
        hang off higher cuts), so walk every enclosing name.
        """
        for ancestor in domain.ancestors():
            zone = self._world.child_zones.get(ancestor)
            if zone is not None and zone.get(domain, RRType.NS):
                return zone
        suffix_zone = self._world.suffix_zones.get(iso2)
        if suffix_zone is not None and suffix_zone.get(domain, RRType.NS):
            return suffix_zone
        return None

    # ------------------------------------------------------------------
    def sweep(
        self,
        delete_zombies: bool = True,
        fix_partial: bool = True,
        synchronize: bool = True,
        lock_exposed: bool = True,
    ) -> RemediationReport:
        """Run the full campaign over the study's findings."""
        report = RemediationReport()
        delegation = self._study.delegation()
        consistency = self._study.consistency()

        if delete_zombies or fix_partial:
            self._fix_defects(
                delegation, report, delete_zombies, fix_partial
            )
        if synchronize:
            self._synchronize(consistency, report)
        if lock_exposed:
            self._lock_exposed(delegation, report)
        return report

    # ------------------------------------------------------------------
    def _fix_defects(
        self,
        delegation: DelegationAnalysis,
        report: RemediationReport,
        delete_zombies: bool,
        fix_partial: bool,
    ) -> None:
        for defect in delegation.reports().values():
            if not defect.any_defect:
                continue
            parent_zone = self._parent_zone_for(defect.domain, defect.iso2)
            if parent_zone is None:
                report.skipped[defect.domain] = "parent zone not reachable"
                continue
            server = self._epp_for_zone(parent_zone, defect.iso2)
            if server is None:
                report.skipped[defect.domain] = "no EPP route to parent"
                continue
            session = server.login("remediation-sweep")
            if defect.verdict == DelegationClass.FULL:
                if not delete_zombies:
                    continue
                result = session.delete_delegation(defect.domain)
                if result.ok:
                    report.zombies_deleted.append(defect.domain)
                else:
                    report.skipped[defect.domain] = result.message
            elif fix_partial:
                existing = parent_zone.get(defect.domain, RRType.NS)
                if existing is None:
                    continue
                healthy = tuple(
                    rdata.nsdname  # type: ignore[union-attr]
                    for rdata in existing.rdatas
                    if rdata.nsdname not in defect.defective_ns
                )
                if not healthy:
                    report.skipped[defect.domain] = "no healthy NS to keep"
                    continue
                result = session.update_ns(defect.domain, healthy)
                if result.ok:
                    report.delegations_updated.append(defect.domain)
                else:
                    report.skipped[defect.domain] = result.message

    def _epp_for_zone(self, parent_zone: Zone, iso2: str) -> Optional[EppServer]:
        server = self._epp.get(iso2)
        if server is not None and server.parent_zone is parent_zone:
            return server
        # Intermediate parents get ad-hoc EPP servers on first touch.
        key = f"{iso2}:{parent_zone.origin}"
        if key not in self._epp:
            self._epp[key] = EppServer(
                parent_zone, authorized_registrars=("remediation-sweep",)
            )
        return self._epp[key]

    # ------------------------------------------------------------------
    def _synchronize(
        self,
        consistency: ConsistencyAnalysis,
        report: RemediationReport,
    ) -> None:
        for finding in consistency.reports().values():
            if finding.consistent:
                continue
            child_zone = self._world.child_zones.get(finding.domain)
            if child_zone is None:
                report.skipped.setdefault(finding.domain, "no child zone")
                continue
            parent_zone = self._parent_zone_for(finding.domain, finding.iso2)
            if parent_zone is None:
                report.skipped.setdefault(finding.domain, "no parent zone")
                continue
            soa = child_zone.soa
            self._csync.publish(
                CsyncRecord(
                    zone=finding.domain,
                    soa_serial=soa.serial if soa else 1,
                    immediate=False,
                )
            )
            outcome = self._csync.sync_delegation(parent_zone, child_zone)
            if outcome.applied:
                report.synchronized.append(finding.domain)
            else:
                report.skipped.setdefault(finding.domain, outcome.reason)

    # ------------------------------------------------------------------
    def _lock_exposed(
        self,
        delegation: DelegationAnalysis,
        report: RemediationReport,
    ) -> None:
        exposure = delegation.hijack_exposure()
        for victim in exposure.victim_domains:
            iso2 = exposure.victim_country.get(victim)
            if iso2 is None:
                continue
            parent_zone = self._parent_zone_for(victim, iso2)
            if parent_zone is None:
                continue
            server = self._epp_for_zone(parent_zone, iso2)
            if server is None or server.is_locked(victim):
                continue
            session = server.login("remediation-sweep")
            if session.lock(victim).ok:
                report.locked.append(victim)
