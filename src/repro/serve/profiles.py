"""Canonical chaos-profile installation, shared by every consumer.

``repro campaign``, ``repro serve``, and ``repro servelint --verify``
all arm the same named fault profiles the same way: windows anchored at
the network clock's current instant, targets drawn over the sorted
address population, REFUSED responses synthesized through the DNS
layer's ``make_response``.  Duplicating that block per command is how
the anchoring conventions drift apart — this helper is the single copy.
"""

from __future__ import annotations

from ..dns.message import Rcode, make_response
from ..net.chaos import FaultSchedule, build_profile

__all__ = ["install_chaos_profile"]


def install_chaos_profile(network, name: str, seed: int) -> FaultSchedule:
    """Build the named profile over ``network`` and install it.

    Windows are anchored at ``network.clock.now`` — callers decide the
    anchor by choosing *when* to install (the serve pipeline installs
    after warm + TTL aging, the campaign after seed selection).
    Returns the installed schedule.
    """
    schedule = build_profile(
        name,
        sorted(network.addresses()),
        seed=seed,
        start=network.clock.now,
        refusal_factory=lambda query: make_response(
            query, rcode=Rcode.REFUSED
        ),
    )
    network.chaos = schedule
    return schedule
