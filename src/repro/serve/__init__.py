"""The resilient recursive serving layer.

Turns the reproduction from a system that *probes* the government DNS
ecosystem into one that *serves* it: a caching recursive resolver
(positive + RFC 2308 negative caching, RFC 8767 serve-stale, prefetch,
health-aware upstream selection) fed by a seeded client-population
workload, designed to degrade gracefully under the chaos layer.

Modules
-------
``workload``
    Seeded per-country client traffic: Zipf popularity, diurnal curve,
    burst storms.  Byte-identical for a given (targets, config, seed)
    regardless of input ordering or hash seed.
``upstream``
    Per-nameserver health book (SRTT + circuit breaker) and the
    :class:`~repro.serve.upstream.HealthAwareResolver` that orders
    candidate servers by it.
``service``
    :class:`~repro.serve.service.RecursiveService`: the serving loop
    with explicit per-answer degradation states
    (FRESH → STALE-SERVED → FAILED) and bounded background refresh.
"""

from .service import DegradationState, RecursiveService, ServeAnswer, ServeConfig
from .upstream import HealthAwareResolver, UpstreamHealth
from .workload import (
    ClientQuery,
    ClientWorkload,
    WorkloadConfig,
    targets_from_world,
    workload_digest,
)

__all__ = [
    "ClientQuery",
    "ClientWorkload",
    "DegradationState",
    "HealthAwareResolver",
    "RecursiveService",
    "ServeAnswer",
    "ServeConfig",
    "UpstreamHealth",
    "WorkloadConfig",
    "targets_from_world",
    "workload_digest",
]
