"""The caching recursive serving loop with graceful degradation.

A :class:`RecursiveService` answers client queries from a unified
:class:`~repro.dns.cache.ResolverCache` (positive + RFC 2308 negative
entries) backed by a health-aware iterative resolver.  Every answer
carries an explicit degradation state:

``FRESH``
    Answered from live data — a cache hit, or a successful upstream
    resolution (including authoritative NXDOMAIN/NODATA, which are
    *answers*, not failures).
``STALE_SERVED``
    Upstream was unreachable (timeout / SERVFAIL / REFUSED / breaker
    open) but an expired entry inside the RFC 8767 stale window could
    still be served; a bounded background refresh is scheduled.
``FAILED``
    Upstream unreachable and nothing stale to fall back on — the
    client sees SERVFAIL, annotated with the *reason* the upstream
    failed (timeout-derived vs SERVFAIL-derived, per the resolver's
    failure-reason plumbing).

The refresh queue is a deterministic min-heap over the simulated
clock: jobs are retried with exponential backoff at most
``refresh_attempts`` times, and at most one job per (name, type) is in
flight, so a popular dead name costs bounded upstream traffic no
matter how many clients ask for it.  Prefetch rides the same queue:
a fresh hit close to expiry schedules a refresh so hot names stay warm.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dns.cache import CacheAnswer, ResolverCache, ZoneCutCache
from ..dns.name import DnsName
from ..dns.rrset import RRset
from ..inet.backoff import BackoffPolicy
from .upstream import HealthAwareResolver, UpstreamHealth
from .workload import ClientQuery

__all__ = [
    "DegradationState",
    "RecursiveService",
    "ServeAnswer",
    "ServeConfig",
]


class DegradationState:
    """Per-answer degradation ladder: FRESH → STALE_SERVED → FAILED."""

    FRESH = "fresh"
    STALE_SERVED = "stale_served"
    FAILED = "failed"

    ALL = (FRESH, STALE_SERVED, FAILED)


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for the serving layer.

    ``max_ttl`` is deliberately far below the probe-side 7-day clamp:
    a serving cache that never re-validates would hide exactly the
    degradation this layer exists to measure.
    """

    max_ttl: int = 300
    negative_ttl: int = 300
    stale_window: float = 4 * 3600.0
    serve_stale: bool = True
    prefetch: bool = True
    prefetch_horizon: float = 30.0
    refresh_attempts: int = 3
    refresh_backoff: BackoffPolicy = BackoffPolicy(
        base=5.0, multiplier=2.0, cap=120.0
    )
    upstream_timeout: float = 1.5
    upstream_retries: int = 0
    breaker_threshold: int = 3
    breaker_cooldown: float = 120.0

    def __post_init__(self) -> None:
        if self.stale_window < 0:
            raise ValueError(f"stale_window must be >= 0: {self.stale_window}")
        if self.prefetch_horizon < 0:
            raise ValueError(
                f"prefetch_horizon must be >= 0: {self.prefetch_horizon}"
            )
        if self.refresh_attempts < 1:
            raise ValueError(
                f"refresh_attempts must be >= 1: {self.refresh_attempts}"
            )


@dataclass(frozen=True)
class ServeAnswer:
    """One served client query and how it was answered."""

    at: float  # arrival offset within the run
    qname: DnsName
    qtype: str
    iso2: str
    status: str  # "ok" | "nxdomain" | "nodata" | "servfail"
    state: str  # DegradationState
    source: str  # "cache" | "cache_negative" | "stale" | "stale_negative"
    #              | "upstream" | "none"
    latency: float
    failure_reason: Optional[str] = None

    @property
    def answered(self) -> bool:
        return self.status != "servfail"


def _soa_minimum(soa: Optional[RRset]) -> Optional[int]:
    """RFC 2308 negative TTL source: min(SOA minimum, SOA TTL)."""
    if soa is None or not soa.rdatas:
        return None
    minimum = getattr(soa.rdatas[0], "minimum", None)
    if minimum is None:
        return None
    return min(int(minimum), soa.ttl)


class RecursiveService:
    """A serve-stale caching recursive resolver over the simulated net."""

    def __init__(
        self,
        network,
        root_addresses,
        source=None,
        config: ServeConfig = ServeConfig(),
        seed: int = 0,
    ) -> None:
        self._clock = network.clock
        self._config = config
        self.cache = ResolverCache(
            network.clock,
            max_ttl=config.max_ttl,
            negative_ttl=config.negative_ttl,
            stale_window=config.stale_window if config.serve_stale else 0.0,
        )
        self.health = UpstreamHealth(
            network.clock,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
            timeout_srtt=config.upstream_timeout * 2.0,
        )
        self._rng = random.Random(f"serve:{seed}")
        # A live (never frozen) delegation cache: the serving resolver
        # starts walks at the deepest known cut like any production
        # recursive, instead of hammering the roots once per miss.
        # Infrastructure entries honour the delegation TTL (not the
        # short answer clamp): NS sets churn far slower than answers.
        self.zone_cuts = ZoneCutCache(network.clock)
        self._resolver = HealthAwareResolver(
            network,
            root_addresses,
            health=self.health,
            cache=self.cache,
            source=source,
            timeout=config.upstream_timeout,
            retries=config.upstream_retries,
            zone_cuts=self.zone_cuts,
            backoff_rng=self._rng,
        )
        self._refresh_heap: List[Tuple[float, int, DnsName, str, int]] = []
        self._refresh_seq = 0
        self._pending: Set[Tuple[DnsName, str]] = set()
        # Per-(qname, qtype) degradation-state tallies, fed by _answer.
        # Consumed by the servelint differential oracle; deliberately
        # NOT part of stats()/ServingReport so committed digests stay
        # byte-identical.
        self._outcomes: Dict[Tuple[DnsName, str], Dict[str, int]] = {}
        self.stale_instant_serves = 0
        self.prefetches = 0
        self.refreshes_run = 0
        self.refreshes_ok = 0
        self.refreshes_abandoned = 0

    @property
    def config(self) -> ServeConfig:
        return self._config

    # ------------------------------------------------------------------
    # Warm phase
    # ------------------------------------------------------------------
    def warm(self, queries: Sequence[ClientQuery]) -> int:
        """Resolve every distinct popular name once (pre-chaos warm-up).

        Returns how many names resolved OK.  Mirrors the campaign's
        warm-then-freeze pattern, except the serving cache stays live —
        entries age and expire; that is the point.
        """
        keys = sorted(
            {(q.qname, q.qtype) for q in queries if q.kind == "popular"}
        )
        warmed = 0
        for qname, qtype in keys:
            if self._resolver.resolve(qname, qtype).status == "ok":
                warmed += 1
        return warmed

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def run(self, queries: Sequence[ClientQuery]) -> List[ServeAnswer]:
        """Serve a workload sequentially under the simulated clock.

        Arrival offsets are mapped onto the clock from the instant this
        method is called; the clock advances to each arrival before
        serving.  Latency is per-query *service time* (clock consumed
        resolving that query), not queueing delay — the sequential
        worker is a simulator artifact, not a modeled property.
        """
        base = self._clock.now
        answers: List[ServeAnswer] = []
        for query in queries:
            arrival = base + query.at
            if self._clock.now < arrival:
                self._clock.advance(arrival - self._clock.now)
            self.run_due_refreshes()
            answers.append(self.serve(query))
        return answers

    def serve(self, query: ClientQuery) -> ServeAnswer:
        """Answer one client query at the current clock instant."""
        started = self._clock.now
        qname, qtype = query.qname, query.qtype
        found = self.cache.lookup(qname, qtype)
        if found.state == "fresh":
            if (
                self._config.prefetch
                and found.expires_at - self._clock.now
                <= self._config.prefetch_horizon
            ):
                if self._schedule_refresh(qname, qtype):
                    self.prefetches += 1
            return self._answer(
                query, started, "ok", DegradationState.FRESH, "cache"
            )
        if found.state == "negative":
            return self._answer(
                query,
                started,
                "nodata" if found.kind == "nodata" else "nxdomain",
                DegradationState.FRESH,
                "cache_negative",
            )
        if found.is_stale and (qname, qtype) in self._pending:
            # A refresh is already underway: answer instantly from the
            # stale entry instead of stacking a second upstream attempt.
            self.stale_instant_serves += 1
            return self._stale_answer(query, started, found, None)
        resolution = self._resolver.resolve(qname, qtype)
        if resolution.status == "ok":
            return self._answer(
                query, started, "ok", DegradationState.FRESH, "upstream"
            )
        if resolution.status in ("nxdomain", "nodata"):
            # Re-key the negative TTL on the SOA minimum the upstream
            # actually returned (RFC 2308), preserving the kind.
            self.cache.put_negative(
                qname,
                qtype,
                kind=resolution.status,
                soa_minimum=_soa_minimum(resolution.soa),
            )
            return self._answer(
                query,
                started,
                resolution.status,
                DegradationState.FRESH,
                "upstream",
            )
        # Upstream exhausted: serve stale if allowed, else fail.
        if found.is_stale:
            self._schedule_refresh(qname, qtype)
            return self._stale_answer(
                query, started, found, resolution.failure_reason
            )
        return self._answer(
            query,
            started,
            "servfail",
            DegradationState.FAILED,
            "none",
            failure_reason=resolution.failure_reason,
        )

    def _answer(
        self,
        query: ClientQuery,
        started: float,
        status: str,
        state: str,
        source: str,
        failure_reason: Optional[str] = None,
    ) -> ServeAnswer:
        tally = self._outcomes.setdefault((query.qname, query.qtype), {})
        tally[state] = tally.get(state, 0) + 1
        return ServeAnswer(
            at=query.at,
            qname=query.qname,
            qtype=query.qtype,
            iso2=query.iso2,
            status=status,
            state=state,
            source=source,
            latency=self._clock.now - started,
            failure_reason=failure_reason,
        )

    def _stale_answer(
        self,
        query: ClientQuery,
        started: float,
        found: CacheAnswer,
        failure_reason: Optional[str],
    ) -> ServeAnswer:
        if found.state == "stale_negative":
            status = "nodata" if found.kind == "nodata" else "nxdomain"
        else:
            status = "ok"
        return self._answer(
            query,
            started,
            status,
            DegradationState.STALE_SERVED,
            found.state,
            failure_reason=failure_reason,
        )

    # ------------------------------------------------------------------
    # Background refresh (bounded, deterministic)
    # ------------------------------------------------------------------
    def _schedule_refresh(
        self, qname: DnsName, qtype: str, attempt: int = 1
    ) -> bool:
        key = (qname, qtype)
        if attempt == 1:
            if key in self._pending:
                return False
            self._pending.add(key)
        delay = self._config.refresh_backoff.delay(attempt, self._rng)
        self._refresh_seq += 1
        heapq.heappush(
            self._refresh_heap,
            (self._clock.now + delay, self._refresh_seq, qname, qtype, attempt),
        )
        return True

    def run_due_refreshes(self) -> int:
        """Run every refresh job whose due time has passed; returns count.

        The unique sequence number in each heap entry makes pop order —
        and therefore upstream traffic — deterministic even when jobs
        share a due time.
        """
        ran = 0
        while (
            self._refresh_heap
            and self._refresh_heap[0][0] <= self._clock.now
        ):
            _, _, qname, qtype, attempt = heapq.heappop(self._refresh_heap)
            ran += 1
            self.refreshes_run += 1
            resolution = self._resolver.resolve(qname, qtype)
            if resolution.status == "ok":
                self.refreshes_ok += 1
                self._pending.discard((qname, qtype))
            elif resolution.status in ("nxdomain", "nodata"):
                self.cache.put_negative(
                    qname,
                    qtype,
                    kind=resolution.status,
                    soa_minimum=_soa_minimum(resolution.soa),
                )
                self.refreshes_ok += 1
                self._pending.discard((qname, qtype))
            elif attempt < self._config.refresh_attempts:
                self._schedule_refresh(qname, qtype, attempt=attempt + 1)
            else:
                # Give up; the entry ages out of the stale window on its
                # own.  A later client query may start a new cycle.
                self.refreshes_abandoned += 1
                self._pending.discard((qname, qtype))
        return ran

    def pending_refreshes(self) -> int:
        return len(self._pending)

    def outcome_ledger(
        self,
    ) -> Dict[Tuple[DnsName, str], Dict[str, int]]:
        """Observed degradation states per served (qname, qtype).

        Sorted copies all the way down, so consumers can serialize the
        ledger without re-canonicalizing it."""
        return {
            key: {
                state: self._outcomes[key][state]
                for state in sorted(self._outcomes[key])
            }
            for key in sorted(self._outcomes)
        }

    # ------------------------------------------------------------------
    # Report surface
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Deterministic service-side counters for the serving report."""
        return {
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_stale_hits": self.cache.stale_hits,
            "cache_entries": len(self.cache),
            "stale_instant_serves": self.stale_instant_serves,
            "prefetches": self.prefetches,
            "refreshes_run": self.refreshes_run,
            "refreshes_ok": self.refreshes_ok,
            "refreshes_abandoned": self.refreshes_abandoned,
            "refreshes_pending": len(self._pending),
            "breaker_trips": self.health.breaker.trips,
            "breaker_skips": self.health.breaker.skips,
            "breaker_open_at_end": self.health.breaker.open_count(),
            "srtt_tracked": self.health.tracked(),
            "zone_cuts": len(self.zone_cuts),
            "zone_cut_hits": self.zone_cuts.hits,
            "zone_cut_misses": self.zone_cuts.misses,
        }
