"""Seeded client-population workload generator.

Synthesizes the query stream a recursive resolver serving government
domains would see from a national client population:

- **Per-country Zipf popularity** — within each country, queries
  concentrate on a few hot domains (rank-``r`` weight ``1/r^s``), the
  canonical web-traffic shape.
- **Diurnal curve** — per-country sinusoidal load with a phase offset
  per country, approximating time zones.
- **Burst storms** — short windows in which one country's rate is
  multiplied (a news event, an outage-recovery stampede).
- **Query mix** — mostly ``www.<domain>`` A lookups, plus a slice of
  NXDOMAIN typos (``missing-<k>.<domain>``) and apex-A NODATA lookups,
  so both RFC 2308 negative-cache paths see realistic traffic.

Determinism contract: :meth:`ClientWorkload.generate` is a pure
function of (target set, config, seed).  Targets are canonicalized
(sorted, deduplicated) before any RNG draw, so caller ordering and
``PYTHONHASHSEED`` cannot perturb the stream — the property the
workload determinism test asserts byte-for-byte.  Arrival times are
*relative offsets* from the serving run's start, so warming the cache
beforehand cannot shift the workload either.
"""

from __future__ import annotations

import hashlib
import math
import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dns.name import DnsName
from ..dns.rdata import RRType

__all__ = [
    "ClientQuery",
    "ClientWorkload",
    "WorkloadConfig",
    "targets_from_world",
    "workload_digest",
]

_DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class ClientQuery:
    """One client lookup: arrival offset, name, type, and provenance."""

    at: float  # seconds after the serving run's start
    qname: DnsName
    qtype: str
    iso2: str
    kind: str  # "popular" | "nxdomain" | "nodata"


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the synthetic client population."""

    duration: float = 600.0
    mean_qps: float = 20.0
    zipf_exponent: float = 1.1
    nxdomain_share: float = 0.06
    nodata_share: float = 0.04
    nxdomain_pool: int = 16
    diurnal_amplitude: float = 0.4
    storm_count: int = 2
    storm_duration: float = 30.0
    storm_multiplier: float = 5.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.mean_qps <= 0:
            raise ValueError(f"mean_qps must be positive: {self.mean_qps}")
        if self.zipf_exponent <= 0:
            raise ValueError(
                f"zipf_exponent must be positive: {self.zipf_exponent}"
            )
        if self.nxdomain_share < 0 or self.nodata_share < 0:
            raise ValueError("negative-query shares must be >= 0")
        if self.nxdomain_share + self.nodata_share >= 1.0:
            raise ValueError("negative-query shares must sum below 1")
        if self.nxdomain_pool < 1:
            raise ValueError(f"nxdomain_pool must be >= 1: {self.nxdomain_pool}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1): {self.diurnal_amplitude}"
            )
        if self.storm_count < 0:
            raise ValueError(f"storm_count must be >= 0: {self.storm_count}")
        if self.storm_duration <= 0:
            raise ValueError(
                f"storm_duration must be positive: {self.storm_duration}"
            )
        if self.storm_multiplier < 1.0:
            raise ValueError(
                f"storm_multiplier must be >= 1: {self.storm_multiplier}"
            )


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (rates here stay tiny per step)."""
    if lam <= 0.0:
        return 0
    limit = math.exp(-lam)
    count = 0
    product = 1.0
    while True:
        product *= rng.random()
        if product <= limit:
            return count
        count += 1


def targets_from_world(world) -> List[Tuple[DnsName, str]]:
    """(domain, iso2) pairs for every ground-truth target, sorted."""
    return sorted((truth.name, truth.iso2) for truth in world.truths.values())


class ClientWorkload:
    """Deterministic query-stream generator over a government ecosystem."""

    def __init__(
        self,
        targets: Sequence[Tuple[DnsName, str]],
        config: WorkloadConfig = WorkloadConfig(),
        seed: int = 0,
    ) -> None:
        if not targets:
            raise ValueError("workload needs at least one (domain, iso2) target")
        self._config = config
        self._seed = seed
        # Canonicalize before any RNG draw: generation must be invariant
        # under caller ordering and duplicates.
        unique = sorted(set(targets))
        by_country: Dict[str, List[DnsName]] = {}
        for name, iso2 in unique:
            by_country.setdefault(iso2, []).append(name)
        self._countries: Tuple[str, ...] = tuple(sorted(by_country))
        self._domains: Dict[str, Tuple[DnsName, ...]] = {
            iso2: tuple(by_country[iso2]) for iso2 in self._countries
        }
        total = float(len(unique))
        self._country_share: Dict[str, float] = {
            iso2: len(self._domains[iso2]) / total for iso2 in self._countries
        }
        # Per-country Zipf cumulative weights over the sorted domain list.
        self._zipf_cum: Dict[str, Tuple[float, ...]] = {}
        for iso2 in self._countries:
            cum: List[float] = []
            running = 0.0
            for rank in range(1, len(self._domains[iso2]) + 1):
                running += 1.0 / (rank ** config.zipf_exponent)
                cum.append(running)
            self._zipf_cum[iso2] = tuple(cum)

    @property
    def countries(self) -> Tuple[str, ...]:
        return self._countries

    def _pick_domain(self, iso2: str, rng: random.Random) -> DnsName:
        cum = self._zipf_cum[iso2]
        index = bisect_left(cum, rng.random() * cum[-1])
        if index >= len(cum):
            index = len(cum) - 1
        return self._domains[iso2][index]

    def generate(self) -> Tuple[ClientQuery, ...]:
        """The full query stream, sorted by arrival offset."""
        cfg = self._config
        rng = random.Random(f"serve-workload:{self._seed}")
        storms: List[Tuple[float, float, str]] = []
        for _ in range(cfg.storm_count):
            begin = rng.uniform(
                0.0, max(0.0, cfg.duration - cfg.storm_duration)
            )
            iso2 = self._countries[rng.randrange(len(self._countries))]
            storms.append((begin, begin + cfg.storm_duration, iso2))
        phases = {
            iso2: (2.0 * math.pi * index) / len(self._countries)
            for index, iso2 in enumerate(self._countries)
        }
        queries: List[ClientQuery] = []
        for step in range(int(math.ceil(cfg.duration))):
            t = float(step)
            for iso2 in self._countries:
                rate = cfg.mean_qps * self._country_share[iso2]
                angle = 2.0 * math.pi * ((t % _DAY_SECONDS) / _DAY_SECONDS)
                rate *= 1.0 + cfg.diurnal_amplitude * math.sin(
                    angle + phases[iso2]
                )
                for begin, end, storm_iso2 in storms:
                    if storm_iso2 == iso2 and begin <= t < end:
                        rate *= cfg.storm_multiplier
                for _ in range(_poisson(rng, rate)):
                    offset = t + rng.random()
                    domain = self._pick_domain(iso2, rng)
                    mix = rng.random()
                    if mix < cfg.nxdomain_share:
                        qname = domain.prepend(
                            f"missing-{rng.randrange(cfg.nxdomain_pool)}"
                        )
                        kind = "nxdomain"
                    elif mix < cfg.nxdomain_share + cfg.nodata_share:
                        # Apex A: the name exists (SOA/NS) but carries no
                        # A records in the generated zones — a NODATA.
                        qname = domain
                        kind = "nodata"
                    else:
                        qname = domain.prepend("www")
                        kind = "popular"
                    queries.append(
                        ClientQuery(
                            at=offset,
                            qname=qname,
                            qtype=RRType.A,
                            iso2=iso2,
                            kind=kind,
                        )
                    )
        queries.sort(key=lambda q: (q.at, str(q.qname), q.kind))
        return tuple(queries)


def workload_digest(queries: Sequence[ClientQuery]) -> str:
    """sha256 over the canonical rendering of a query stream."""
    hasher = hashlib.sha256()
    for query in queries:
        hasher.update(
            f"{query.at:.9f}|{query.qname}|{query.qtype}|"
            f"{query.iso2}|{query.kind}\n".encode("utf-8")
        )
    return hasher.hexdigest()
