"""Health-aware upstream nameserver selection.

The probing resolver tries candidate servers in referral order — right
for measurement (every server must be observed), wrong for serving,
where the goal is answering fast despite sick upstreams.  This module
adds the serving policy:

:class:`UpstreamHealth`
    A per-nameserver health book: smoothed round-trip time (SRTT, the
    classic EWMA) plus a :class:`~repro.net.resilience.CircuitBreaker`
    fed with every exchange outcome.  Silence inflates SRTT to the
    timeout and counts toward opening the breaker; any response —
    including REFUSED/SERVFAIL — closes it (the breaker tracks
    reachability, not correctness).

:class:`HealthAwareResolver`
    The iterative resolver with one override: candidate servers are
    tried fastest-SRTT-first, breaker-open servers are skipped, and
    every exchange feeds the health book.  Ordering is deterministic —
    ``(srtt, address)`` — so two runs over the same event sequence pick
    identical servers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dns.message import Message
from ..dns.name import DnsName
from ..dns.resolver import (
    Resolver,
    ServerFailure,
    TraceStep,
    _dominant_failure,
)
from ..dns.errors import NoNameservers
from ..inet.address import IPv4Address
from ..inet.clock import SimulatedClock
from ..net.resilience import CircuitBreaker

__all__ = ["HealthAwareResolver", "UpstreamHealth"]


class UpstreamHealth:
    """Per-nameserver SRTT tracking plus circuit-breaker gating."""

    def __init__(
        self,
        clock: SimulatedClock,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 120.0,
        srtt_alpha: float = 0.3,
        default_srtt: float = 0.25,
        timeout_srtt: float = 3.0,
    ) -> None:
        if not 0.0 < srtt_alpha <= 1.0:
            raise ValueError(f"srtt_alpha must be in (0, 1]: {srtt_alpha}")
        if default_srtt <= 0 or timeout_srtt <= 0:
            raise ValueError("SRTT seeds must be positive")
        self.breaker = CircuitBreaker(
            clock, threshold=breaker_threshold, cooldown=breaker_cooldown
        )
        self._alpha = srtt_alpha
        self._default_srtt = default_srtt
        self._timeout_srtt = timeout_srtt
        self._srtt: Dict[IPv4Address, float] = {}

    def srtt(self, address: IPv4Address) -> float:
        return self._srtt.get(address, self._default_srtt)

    def order(self, candidates: Sequence[IPv4Address]) -> List[IPv4Address]:
        """Deduplicated candidates, fastest believed server first.

        The tiebreak on the address value keeps the order a pure
        function of the health book, not of arrival order.
        """
        return sorted(
            dict.fromkeys(candidates),
            key=lambda address: (self.srtt(address), address),
        )

    def admit(self, address: IPv4Address) -> bool:
        """Breaker gate (open circuits are skipped, not retried)."""
        return self.breaker.allow(address)

    def observe(self, address: IPv4Address, rtt: Optional[float]) -> None:
        """Feed one exchange: ``rtt`` in seconds, or None for silence."""
        if rtt is None:
            self._srtt[address] = self._timeout_srtt
            self.breaker.record_outcome(address, responded=False)
            return
        previous = self._srtt.get(address, rtt)
        self._srtt[address] = (
            (1.0 - self._alpha) * previous + self._alpha * rtt
        )
        self.breaker.record_outcome(address, responded=True)

    def tracked(self) -> int:
        """How many addresses have an observed SRTT."""
        return len(self._srtt)


class HealthAwareResolver(Resolver):
    """Iterative resolver that orders candidate servers by health.

    Identical wire semantics to :class:`~repro.dns.resolver.Resolver`
    except for server choice: per referral level, candidates are tried
    in SRTT order, breaker-open addresses are skipped (bounded futility
    — a dead delegation fails fast instead of timing out once per
    client), and every exchange outcome updates the health book.
    """

    def __init__(
        self,
        network,
        root_addresses: Sequence[IPv4Address],
        health: UpstreamHealth,
        **kwargs,
    ) -> None:
        super().__init__(network, root_addresses, **kwargs)
        self._health = health

    def _try_servers(
        self,
        candidates: List[IPv4Address],
        unresolved_ns: List[DnsName],
        qname: DnsName,
        qtype: str,
        trace: List[TraceStep],
        depth: int,
    ) -> Message:
        pending_ns = list(unresolved_ns)
        queue = self._health.order(candidates)
        failures: List[str] = []
        skipped = 0
        while queue or pending_ns:
            if not queue:
                hostname = pending_ns.pop(0)
                queue = self._health.order(
                    self._resolve_ns_host(hostname, trace, depth)
                )
                continue
            server = queue.pop(0)
            if not self._health.admit(server):
                skipped += 1
                continue
            before = self._network.clock.now
            try:
                response = self._exchange(server, qname, qtype, trace)
            except ServerFailure as failure:
                self._health.observe(
                    server,
                    None
                    if failure.outcome == "timeout"
                    else self._network.clock.now - before,
                )
                failures.append(failure.outcome)
                continue
            self._health.observe(server, self._network.clock.now - before)
            return response
        if not failures and skipped:
            # Every candidate was breaker-blocked; the open circuits were
            # tripped by silence, so surface the exhaustion as timeouts.
            failures.append("timeout")
        raise NoNameservers(
            f"all nameservers failed for {qname} {qtype}",
            reason=_dominant_failure(failures),
        )
