"""One-call regeneration of every paper artifact.

``render_all`` produces the text form of every table and figure the
paper's §IV reports, keyed by artifact id (``fig02`` … ``tab3``);
``export_all`` writes them to a directory as ``.txt`` plus
machine-readable ``.csv`` — the bundle a downstream user wants when
they say "give me the paper's numbers for my own plots".
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Tuple

from .export import write_csv
from .figures import Distribution, Series, cdf_points, render_bars, render_series
from .tables import format_percent, render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.study import GovernmentDnsStudy

__all__ = ["ARTIFACTS", "render_all", "export_all"]

ARTIFACTS: Tuple[str, ...] = (
    "fig02", "fig03", "fig04", "fig06", "fig07", "fig08", "fig09",
    "tab1", "tab2", "tab3", "fig10", "fig11", "fig12", "fig13", "fig14",
)


def _fig02(study) -> Tuple[str, List[List[object]], List[str]]:
    fig2 = study.pdns_replication().figure2()
    text = render_series(
        [
            Series.from_mapping("domains", {y: c[0] for y, c in fig2.items()}),
            Series.from_mapping("countries", {y: c[1] for y, c in fig2.items()}),
        ],
        title="Figure 2 — domains & countries in PDNS per year",
    )
    rows = [[year, counts[0], counts[1]] for year, counts in sorted(fig2.items())]
    return text, rows, ["year", "domains", "countries"]


def _fig03(study):
    fig3 = study.pdns_replication().figure3()
    text = render_series(
        [Series.from_mapping("nameservers", fig3)],
        title="Figure 3 — nameserver hostnames in PDNS per year",
    )
    return text, [[y, n] for y, n in sorted(fig3.items())], ["year", "nameservers"]


def _fig04(study):
    fig4 = study.pdns_replication().figure4()
    text = render_bars(
        Distribution.from_mapping("domains", fig4).top(20),
        title="Figure 4 — domains per country, PDNS 2020 (top 20)",
        value_format="{:.0f}",
    )
    rows = sorted(fig4.items(), key=lambda kv: -kv[1])
    return text, [[iso2, count] for iso2, count in rows], ["iso2", "domains"]


def _fig06(study):
    fig6 = study.pdns_replication().figure6()
    series = []
    for key, label in (
        ("overlap_2011", "2011 cohort"),
        ("new_share", "new"),
        ("gone_share", "gone"),
    ):
        series.append(
            Series.from_mapping(
                label,
                {y: row[key] * 100 for y, row in fig6.items() if key in row},
            )
        )
    text = render_series(series, title="Figure 6 — d_1NS churn (%)", y_format="{:.1f}")
    rows = [
        [
            year,
            row.get("overlap_2011", ""),
            row.get("new_share", ""),
            row.get("gone_share", ""),
        ]
        for year, row in sorted(fig6.items())
    ]
    return text, rows, ["year", "overlap_2011", "new_share", "gone_share"]


def _fig07(study):
    fig7 = study.pdns_replication().figure7()
    text = render_series(
        [
            Series.from_mapping("d_1NS private %", {y: s * 100 for y, (s, _) in fig7.items()}),
            Series.from_mapping("all private %", {y: o * 100 for y, (_, o) in fig7.items()}),
        ],
        title="Figure 7 — private deployment share per year",
        y_format="{:.1f}",
    )
    rows = [[y, s, o] for y, (s, o) in sorted(fig7.items())]
    return text, rows, ["year", "single_ns_private", "overall_private"]


def _fig08(study):
    analysis = study.active_replication()
    overall = analysis.figure8_overall()
    by_country = analysis.figure8_by_country(min_singles=3)
    text = render_bars(
        Distribution.from_mapping(
            "stale %", {k: v * 100 for k, v in by_country.items()}
        ).top(20),
        title=f"Figure 8 — stale d_1NS per country (overall {overall*100:.1f}%)",
    )
    rows = sorted(by_country.items(), key=lambda kv: -kv[1])
    return text, [[iso2, rate] for iso2, rate in rows], ["iso2", "stale_share"]


def _fig09(study):
    analysis = study.active_replication()
    histogram = analysis.figure9_distribution()
    cdf = cdf_points(histogram)
    text = render_series(
        [Series("CDF %", tuple((x, y * 100) for x, y in cdf))],
        title="Figure 9 — CDF of #nameservers per domain",
        y_format="{:.1f}",
    )
    return (
        text,
        [[count, histogram[count]] for count in sorted(histogram)],
        ["ns_count", "domains"],
    )


def _tab1(study):
    rows = study.diversity().table1()
    text = render_table(
        ["", "Domains", "|IP|>1", "|/24|>1", "|ASN|>1"],
        [
            [
                r.label,
                r.domains,
                format_percent(r.multi_ip_share),
                format_percent(r.multi_prefix_share),
                format_percent(r.multi_asn_share),
            ]
            for r in rows
        ],
        title="Table I — nameserver address diversity",
    )
    csv_rows = [
        [r.label, r.domains, r.multi_ip_share, r.multi_prefix_share, r.multi_asn_share]
        for r in rows
    ]
    return text, csv_rows, ["label", "domains", "multi_ip", "multi_24", "multi_asn"]


def _tab2(study):
    table = study.centralization().table2()
    body = []
    csv_rows = []
    for provider in sorted(table):
        u11, u20 = table[provider][2011], table[provider][2020]
        body.append(
            [provider, u11.domains, u11.single_provider_domains, u11.groups,
             u20.domains, u20.single_provider_domains, u20.groups]
        )
        csv_rows.append(
            [provider, u11.domains, u11.domain_share, u11.groups,
             u20.domains, u20.domain_share, u20.groups]
        )
    text = render_table(
        ["Provider", "2011 dom", "2011 d1P", "2011 grp",
         "2020 dom", "2020 d1P", "2020 grp"],
        body,
        title="Table II — major provider usage",
    )
    return text, csv_rows, [
        "provider", "domains_2011", "share_2011", "groups_2011",
        "domains_2020", "share_2020", "groups_2020",
    ]


def _tab3(study):
    analysis = study.centralization()
    sections = []
    csv_rows = []
    for year in (2011, 2020):
        rows = analysis.top_providers(year, limit=10)
        sections.append(
            render_table(
                ["Provider", "Domains", "Share", "Groups", "Countries"],
                [
                    [r.provider, r.domains, format_percent(r.domain_share),
                     r.groups, r.countries]
                    for r in rows
                ],
                title=f"Table III — top providers by reach, {year}",
            )
        )
        csv_rows.extend(
            [year, r.provider, r.domains, r.domain_share, r.groups, r.countries]
            for r in rows
        )
    return (
        "\n\n".join(sections),
        csv_rows,
        ["year", "provider", "domains", "share", "groups", "countries"],
    )


def _fig10(study):
    delegation = study.delegation()
    prevalence = delegation.prevalence()
    by_country = delegation.figure10_by_country()
    text = render_bars(
        Distribution.from_mapping(
            "any-defect %",
            {
                iso2: row["any"] * 100
                for iso2, row in by_country.items()
                if row["domains"] >= 10
            },
        ).top(20),
        title=(
            "Figure 10 — defective delegations "
            f"(any {prevalence['any']*100:.1f}%, partial "
            f"{prevalence['partial']*100:.1f}%, full {prevalence['full']*100:.1f}%)"
        ),
    )
    rows = [
        [iso2, int(row["domains"]), row["any"], row["partial"], row["full"]]
        for iso2, row in sorted(by_country.items())
    ]
    return text, rows, ["iso2", "domains", "any", "partial", "full"]


def _fig11(study):
    delegation = study.delegation()
    exposure = delegation.hijack_exposure()
    by_country = delegation.figure11_by_country(exposure)
    text = render_bars(
        Distribution.from_mapping(
            "victims", {k: float(v) for k, (v, _) in by_country.items()}
        ).top(20),
        title=(
            f"Figure 11 — hijack exposure: {len(exposure.available)} d_ns, "
            f"{len(exposure.victim_domains)} domains, "
            f"{len(exposure.countries)} countries"
        ),
        value_format="{:.0f}",
    )
    rows = [
        [iso2, victims, dns_count]
        for iso2, (victims, dns_count) in sorted(by_country.items())
    ]
    return text, rows, ["iso2", "victims", "available_dns"]


def _fig12(study):
    exposure = study.delegation().hijack_exposure()
    prices = exposure.prices()
    stats = exposure.price_stats()
    header = (
        f"Figure 12 — d_ns registration costs (min ${stats.get('min', 0):.2f}, "
        f"median ${stats.get('median', 0):.2f}, max ${stats.get('max', 0):.2f})"
        if stats
        else "Figure 12 — d_ns registration costs (no exposure found)"
    )
    buckets = (
        ("<$1", lambda p: p < 1),
        ("$1-$20", lambda p: 1 <= p < 20),
        ("$20-$300", lambda p: 20 <= p < 300),
        (">=$300", lambda p: p >= 300),
    )
    body = [[label, sum(1 for p in prices if test(p))] for label, test in buckets]
    text = header + "\n" + render_table(["Band", "d_ns"], body)
    rows = [
        [str(domain), quote.price_usd, quote.tier]
        for domain, quote in sorted(
            exposure.available.items(), key=lambda kv: kv[1].price_usd or 0
        )
    ]
    return text, rows, ["dns_domain", "price_usd", "tier"]


def _fig13(study):
    fig13 = study.consistency().figure13()
    text = render_table(
        ["Class", "Share"],
        [[verdict, format_percent(share)] for verdict, share in fig13.items()],
        title="Figure 13 — parent/child consistency",
    )
    return (
        text,
        [[verdict, share] for verdict, share in fig13.items()],
        ["class", "share"],
    )


def _fig14(study):
    rates = study.consistency().figure14_by_country()
    text = render_bars(
        Distribution.from_mapping(
            "disagreement %", {k: v * 100 for k, v in rates.items()}
        ).top(20),
        title="Figure 14 — P≠C rate per d_gov (top 20)",
    )
    rows = sorted(rates.items(), key=lambda kv: -kv[1])
    return text, [[iso2, rate] for iso2, rate in rows], ["iso2", "disagreement"]


_BUILDERS = {
    "fig02": _fig02, "fig03": _fig03, "fig04": _fig04, "fig06": _fig06,
    "fig07": _fig07, "fig08": _fig08, "fig09": _fig09,
    "tab1": _tab1, "tab2": _tab2, "tab3": _tab3,
    "fig10": _fig10, "fig11": _fig11, "fig12": _fig12, "fig13": _fig13,
    "fig14": _fig14,
}


def render_all(study) -> Dict[str, str]:
    """artifact id → rendered text, for every §IV table and figure."""
    return {
        artifact: _BUILDERS[artifact](study)[0] for artifact in ARTIFACTS
    }


def export_all(study, outdir: str) -> Dict[str, Tuple[str, str]]:
    """Write ``<id>.txt`` and ``<id>.csv`` per artifact into ``outdir``.

    Returns {artifact id → (txt path, csv path)}.
    """
    os.makedirs(outdir, exist_ok=True)
    written: Dict[str, Tuple[str, str]] = {}
    for artifact in ARTIFACTS:
        text, rows, headers = _BUILDERS[artifact](study)
        txt_path = os.path.join(outdir, f"{artifact}.txt")
        csv_path = os.path.join(outdir, f"{artifact}.csv")
        with open(txt_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        write_csv(csv_path, headers, rows)
        written[artifact] = (txt_path, csv_path)
    return written
