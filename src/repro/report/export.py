"""CSV/JSON export of analysis outputs.

Lets downstream users regenerate the paper's plots in their own
tooling: every table and figure the benches print can also be dumped to
disk in machine-readable form.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["to_csv", "to_json", "write_csv", "write_json"]


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        writer.writerow(list(row))
    return buffer.getvalue()


def _jsonable(value: Any) -> Any:
    """Coerce analysis values (DnsName, dataclasses, tuples) to JSON."""
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "__dataclass_fields__"):
        return {
            name: _jsonable(getattr(value, name))
            for name in value.__dataclass_fields__
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_json(payload: Any, indent: int = 2) -> str:
    return json.dumps(_jsonable(payload), indent=indent, sort_keys=True)


def write_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_csv(headers, rows))


def write_json(path: str, payload: Any) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(payload))
