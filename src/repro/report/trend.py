"""Longitudinal trend report: per-epoch series and simple regressions.

The paper's longitudinal sections read deployment health as a time
series — responsive share, defect prevalence, churn volume — rather
than as one snapshot.  This module renders those series from an
:class:`~repro.core.epoch.EpochRunner`'s accumulated epochs, plus the
least-squares trend slopes a follow-up resilience study would regress
on.  The payload is canonical (sorted keys, deterministic rounding) and
carries the per-epoch digest chain, so two runs that agree on the
measurements agree on the report bytes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence

from ..core.dataset import DEFECT_FULL, DEFECT_PARTIAL, UNCLASSIFIED
from ..core.epoch import EpochRunner
from .export import to_json

__all__ = ["TrendReport", "linear_slope"]


def linear_slope(values: Sequence[float]) -> float:
    """Least-squares slope of ``values`` against epoch index 0..n-1."""
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    num = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


class TrendReport:
    """Per-epoch series + regression slopes for one longitudinal run."""

    def __init__(
        self,
        seed: int,
        scale: float,
        incremental: bool,
        rows: List[Dict[str, object]],
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.incremental = incremental
        self.rows = rows

    # ------------------------------------------------------------------
    @classmethod
    def from_runner(cls, runner: EpochRunner) -> "TrendReport":
        dataset = runner.dataset
        targets = len(runner.targets)
        rows: List[Dict[str, object]] = []
        for stats in runner.stats:
            columns = dataset.columns_at(stats.epoch)
            classified = len(columns) - columns.defect_verdict.count(
                UNCLASSIFIED
            )
            partial = columns.defect_verdict.count(DEFECT_PARTIAL)
            full = columns.defect_verdict.count(DEFECT_FULL)
            row = stats.to_dict()
            row["responsive_share"] = round(
                stats.responsive / targets, 6
            ) if targets else 0.0
            row["defective_share"] = round(
                (partial + full) / classified, 6
            ) if classified else 0.0
            rows.append(row)
        world = runner.world
        return cls(
            seed=world.config.seed,
            scale=world.config.scale,
            incremental=runner.incremental,
            rows=rows,
        )

    # ------------------------------------------------------------------
    @property
    def epochs(self) -> int:
        return len(self.rows)

    def series(self, key: str) -> List[float]:
        return [float(row[key]) for row in self.rows]  # type: ignore[arg-type]

    def steady_state_queries(self) -> int:
        """Total probe queries across epochs 1..N (bootstrap excluded)."""
        return sum(int(row["queries_sent"]) for row in self.rows[1:])

    def payload(self) -> Dict[str, object]:
        trends = {
            "responsive_share_slope": round(
                linear_slope(self.series("responsive_share")), 8
            ),
            "defective_share_slope": round(
                linear_slope(self.series("defective_share")), 8
            ),
            "changed_per_epoch": round(
                sum(self.series("changed")[1:]) / max(1, self.epochs - 1), 3
            ),
        }
        return {
            "format": 1,
            "kind": "longitudinal-trend",
            "seed": self.seed,
            "scale": self.scale,
            "incremental": self.incremental,
            "epochs": self.epochs,
            "steady_state_queries": self.steady_state_queries(),
            "trends": trends,
            "rows": self.rows,
        }

    def to_json(self) -> str:
        return to_json(self.payload())

    def digest(self) -> str:
        blob = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Fixed-width text table, one row per epoch."""
        lines = [
            f"Longitudinal trend (seed={self.seed}, scale={self.scale}, "
            f"mode={'incremental' if self.incremental else 'full'})",
            f"{'epoch':>5} {'probed':>7} {'changed':>7} {'queries':>8} "
            f"{'resp%':>7} {'defect%':>8} {'dead':>5} {'esc':>4}  digest",
        ]
        for row in self.rows:
            lines.append(
                f"{row['epoch']:>5} {row['probed']:>7} {row['changed']:>7} "
                f"{row['queries_sent']:>8} "
                f"{100 * float(row['responsive_share']):>6.2f}% "
                f"{100 * float(row['defective_share']):>7.2f}% "
                f"{len(row['dead_feeds']):>5} {len(row['escalated']):>4}  "
                f"{str(row['epoch_digest'])[:12]}"
            )
        payload = self.payload()
        trends = payload["trends"]
        lines.append(
            "trend: responsive_share_slope="
        )
        lines[-1] += (
            f"{trends['responsive_share_slope']:+.6f}/epoch, "  # type: ignore[index]
            f"defective_share_slope="
            f"{trends['defective_share_slope']:+.6f}/epoch"  # type: ignore[index]
        )
        if self.epochs > 1:
            lines.append(
                f"steady-state queries/epoch: "
                f"{self.steady_state_queries() / (self.epochs - 1):.0f}"
            )
        return "\n".join(lines)
