"""Resilience counters for a probe campaign.

One small report answering "what did the failure machinery actually
do?": how often the circuit breaker tripped and how many probes it
skipped, how much retransmission backoff cost in simulated time, what
the chaos schedule injected, how many exchanges a resumed campaign
replayed from its journal, and how the dataset's unresponsive domains
split into transient vs. persistent failures.

The JSON payload is the artifact the CI chaos-smoke job uploads; the
text rendering backs ``repro campaign``'s summary output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from .export import to_json, write_json
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.dataset import MeasurementDataset
    from ..core.journal import CampaignJournal
    from ..core.probe import ActiveProber

__all__ = ["ResilienceReport"]


@dataclass
class ResilienceReport:
    """Aggregated resilience/chaos/journal counters for one campaign."""

    # Prober-side adaptive behaviour
    retransmits: int = 0
    backoff_wait_seconds: float = 0.0
    breaker_trips: int = 0
    breaker_skipped_probes: int = 0
    breaker_open_at_end: int = 0
    # Chaos injection (zeros when no schedule was installed)
    chaos_profile: Optional[str] = None
    chaos: Dict[str, int] = field(default_factory=dict)
    # Journal / resume
    journaled: bool = False
    resumed: bool = False
    journal_replayed_sends: int = 0
    journal_recovered_results: int = 0
    # Dataset-level transient-vs-persistent split
    persistence: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        prober: "ActiveProber",
        dataset: "MeasurementDataset",
        journal: Optional["CampaignJournal"] = None,
    ) -> "ResilienceReport":
        report = cls()
        counters = prober.resilience
        report.retransmits = counters.retransmits
        report.backoff_wait_seconds = counters.backoff_wait_seconds
        report.breaker_skipped_probes = counters.breaker_skipped_probes
        breaker = prober.breaker
        if breaker is not None:
            report.breaker_trips = breaker.trips
            report.breaker_open_at_end = breaker.open_count()
        chaos = prober._network.chaos
        if chaos is not None:
            report.chaos_profile = chaos.name
            report.chaos = chaos.stats.as_dict()
        if journal is not None:
            report.journaled = True
            report.resumed = journal.resuming
            report.journal_replayed_sends = journal.replayed_sends
            report.journal_recovered_results = journal.recovered_results
        report.persistence = dataset.persistence_counts()
        return report

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        return {
            "retransmits": self.retransmits,
            "backoff_wait_seconds": self.backoff_wait_seconds,
            "breaker_trips": self.breaker_trips,
            "breaker_skipped_probes": self.breaker_skipped_probes,
            "breaker_open_at_end": self.breaker_open_at_end,
            "chaos_profile": self.chaos_profile,
            "chaos": self.chaos,
            "journaled": self.journaled,
            "resumed": self.resumed,
            "journal_replayed_sends": self.journal_replayed_sends,
            "journal_recovered_results": self.journal_recovered_results,
            "persistence": self.persistence,
        }

    def render(self) -> str:
        rows = [
            ["retransmits", str(self.retransmits)],
            ["backoff wait (sim s)", f"{self.backoff_wait_seconds:.3f}"],
            ["breaker trips", str(self.breaker_trips)],
            ["breaker-skipped probes", str(self.breaker_skipped_probes)],
        ]
        if self.chaos_profile is not None:
            rows.append(["chaos profile", self.chaos_profile])
            for key in sorted(self.chaos):
                rows.append([f"chaos {key}", str(self.chaos[key])])
        if self.journaled:
            rows.append(["journal resumed", "yes" if self.resumed else "no"])
            rows.append(
                ["journal replayed sends", str(self.journal_replayed_sends)]
            )
            rows.append(
                [
                    "journal recovered results",
                    str(self.journal_recovered_results),
                ]
            )
        for key in sorted(self.persistence):
            rows.append([f"{key} failures", str(self.persistence[key])])
        return render_table(["counter", "value"], rows)

    def to_json(self) -> str:
        return to_json(self.payload())

    def write(self, path: str) -> None:
        write_json(path, self.payload())
