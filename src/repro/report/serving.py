"""The serving report: what the recursive serving layer delivered.

Summarizes one ``repro serve`` run the way the DoC artifacts report
load: throughput (QPS), cache effectiveness, how much of the traffic
survived on stale data, the answer-latency CDF, and the per-degradation
state counts.  The payload is canonical JSON; its sha256
(:meth:`ServingReport.digest`) is the byte-identical regression surface
the CI ``serve-smoke`` job compares across two runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from .export import to_json, write_json
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..serve.service import RecursiveService, ServeAnswer

__all__ = ["ServingReport"]

_PERCENTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


def _latency_cdf(latencies: Sequence[float]) -> Dict[str, float]:
    if not latencies:
        return {name: 0.0 for name, _ in _PERCENTILES} | {"max": 0.0}
    ordered = sorted(latencies)
    cdf: Dict[str, float] = {}
    for name, quantile in _PERCENTILES:
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        cdf[name] = round(ordered[index], 6)
    cdf["max"] = round(ordered[-1], 6)
    return cdf


@dataclass
class ServingReport:
    """Aggregated serving metrics for one workload run."""

    seed: int = 0
    profile: Optional[str] = None
    duration: float = 0.0
    serve_stale: bool = True
    total_queries: int = 0
    answered: int = 0
    answered_fraction: float = 0.0
    qps: float = 0.0
    cache_hit_ratio: float = 0.0
    stale_served_fraction: float = 0.0
    state_counts: Dict[str, int] = field(default_factory=dict)
    status_counts: Dict[str, int] = field(default_factory=dict)
    source_counts: Dict[str, int] = field(default_factory=dict)
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, float] = field(default_factory=dict)
    workload_digest: str = ""
    service: Dict[str, int] = field(default_factory=dict)
    chaos: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        answers: Sequence["ServeAnswer"],
        service: "RecursiveService",
        seed: int,
        profile: Optional[str],
        duration: float,
        workload_digest: str,
        chaos_stats: Optional[Dict[str, int]] = None,
    ) -> "ServingReport":
        from ..serve.service import DegradationState

        report = cls(
            seed=seed,
            profile=profile,
            duration=duration,
            serve_stale=service.config.serve_stale,
            workload_digest=workload_digest,
        )
        report.total_queries = len(answers)
        state_counts = {state: 0 for state in DegradationState.ALL}
        status_counts: Dict[str, int] = {}
        source_counts: Dict[str, int] = {}
        reasons: Dict[str, int] = {}
        latencies: List[float] = []
        cached = 0
        for answer in answers:
            state_counts[answer.state] += 1
            status_counts[answer.status] = (
                status_counts.get(answer.status, 0) + 1
            )
            source_counts[answer.source] = (
                source_counts.get(answer.source, 0) + 1
            )
            if answer.failure_reason is not None:
                reasons[answer.failure_reason] = (
                    reasons.get(answer.failure_reason, 0) + 1
                )
            if answer.source in ("cache", "cache_negative"):
                cached += 1
            if answer.answered:
                report.answered += 1
            latencies.append(answer.latency)
        report.state_counts = state_counts
        report.status_counts = status_counts
        report.source_counts = source_counts
        report.failure_reasons = reasons
        report.latency = _latency_cdf(latencies)
        total = report.total_queries
        if total:
            report.answered_fraction = round(report.answered / total, 6)
            report.cache_hit_ratio = round(cached / total, 6)
            report.stale_served_fraction = round(
                state_counts[DegradationState.STALE_SERVED] / total, 6
            )
        if duration > 0:
            report.qps = round(total / duration, 6)
        report.service = service.stats()
        if chaos_stats is not None:
            report.chaos = dict(chaos_stats)
        return report

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "duration": self.duration,
            "serve_stale": self.serve_stale,
            "total_queries": self.total_queries,
            "answered": self.answered,
            "answered_fraction": self.answered_fraction,
            "qps": self.qps,
            "cache_hit_ratio": self.cache_hit_ratio,
            "stale_served_fraction": self.stale_served_fraction,
            "state_counts": self.state_counts,
            "status_counts": self.status_counts,
            "source_counts": self.source_counts,
            "failure_reasons": self.failure_reasons,
            "latency": self.latency,
            "workload_digest": self.workload_digest,
            "service": self.service,
            "chaos": self.chaos,
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON payload (regression surface)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        rows = [
            ["chaos profile", self.profile or "none"],
            ["serve-stale", "on" if self.serve_stale else "off"],
            ["queries", str(self.total_queries)],
            ["qps (simulated)", f"{self.qps:.2f}"],
            [
                "answered",
                f"{self.answered} ({self.answered_fraction:.1%})",
            ],
            ["cache hit ratio", f"{self.cache_hit_ratio:.1%}"],
            ["stale-served fraction", f"{self.stale_served_fraction:.1%}"],
        ]
        for state in sorted(self.state_counts):
            rows.append([f"state {state}", str(self.state_counts[state])])
        for status in sorted(self.status_counts):
            rows.append([f"status {status}", str(self.status_counts[status])])
        for reason in sorted(self.failure_reasons):
            rows.append(
                [f"upstream failure {reason}", str(self.failure_reasons[reason])]
            )
        for name in ("p50", "p90", "p99", "max"):
            if name in self.latency:
                rows.append([f"latency {name}", f"{self.latency[name]:.3f}s"])
        for key in sorted(self.service):
            rows.append([f"service {key}", str(self.service[key])])
        for key in sorted(self.chaos):
            rows.append([f"chaos {key}", str(self.chaos[key])])
        return render_table(["metric", "value"], rows)

    def to_json(self) -> str:
        return to_json(self.payload())

    def write(self, path: str) -> None:
        write_json(path, self.payload())
