"""Responsible-disclosure packages (paper §III-D).

The authors "have taken steps toward responsible disclosure, contacting
operators of domains in which we found vulnerabilities".  This module
assembles those notifications from a completed study: one package per
country, containing only that operator's findings, ordered by severity,
with concrete remediation advice per finding class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..dns.name import DnsName
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.study import GovernmentDnsStudy

__all__ = ["Finding", "DisclosurePackage", "build_disclosures", "render_package"]

# Severity ordering for the findings a study produces.
SEVERITY = {
    "hijackable_ns_domain": 1,   # someone can buy your nameserver
    "dangling_responsive_ns": 2,  # parked/expired but still answering
    "fully_defective": 3,         # zombie delegation
    "partially_defective": 4,
    "single_ns_stale": 5,
    "parent_child_mismatch": 6,
    "single_label_ns": 7,
}

_ADVICE = {
    "hijackable_ns_domain": (
        "Register or reclaim the nameserver domain immediately, then "
        "remove it from the delegation. Until then any third party can "
        "buy it and answer for your zone."
    ),
    "dangling_responsive_ns": (
        "The parent zone lists a nameserver whose domain has lapsed but "
        "still answers. Remove the record at the registry and consider "
        "a registry lock."
    ),
    "fully_defective": (
        "No listed nameserver answers for this zone. If the service is "
        "retired, delete the delegation; if not, restore service or "
        "update the NS set via your registrar."
    ),
    "partially_defective": (
        "At least one listed nameserver does not answer for the zone. "
        "Remove or repair it; stale entries degrade resolution and can "
        "become hijack vectors when their domains lapse."
    ),
    "single_ns_stale": (
        "The domain lists a single nameserver and it no longer answers. "
        "Delete the delegation or restore the host."
    ),
    "parent_child_mismatch": (
        "The parent zone and your nameservers disagree about the NS "
        "set. Align them (CSYNC or a registrar update) to avoid "
        "unpredictable resolution paths."
    ),
    "single_label_ns": (
        "An NS record contains a bare label (a dropped-origin zone-file "
        "typo). Re-enter the record with the full hostname."
    ),
}


@dataclass(frozen=True)
class Finding:
    """One issue affecting one domain."""

    domain: DnsName
    kind: str
    detail: str

    @property
    def severity(self) -> int:
        return SEVERITY.get(self.kind, 99)

    @property
    def advice(self) -> str:
        return _ADVICE.get(self.kind, "Review the record.")


@dataclass
class DisclosurePackage:
    """Everything to send one country's DNS operator."""

    iso2: str
    d_gov: DnsName
    findings: List[Finding] = field(default_factory=list)

    @property
    def worst_severity(self) -> int:
        return min((f.severity for f in self.findings), default=99)

    def by_kind(self) -> Dict[str, List[Finding]]:
        grouped: Dict[str, List[Finding]] = {}
        for finding in sorted(self.findings, key=lambda f: (f.severity, str(f.domain))):
            grouped.setdefault(finding.kind, []).append(finding)
        return grouped


def build_disclosures(study) -> Dict[str, DisclosurePackage]:
    """One package per country with at least one finding."""
    seeds = study.seeds()
    packages: Dict[str, DisclosurePackage] = {}

    def package_for(iso2: str) -> Optional[DisclosurePackage]:
        seed = seeds.get(iso2)
        if seed is None:
            return None
        if iso2 not in packages:
            packages[iso2] = DisclosurePackage(iso2=iso2, d_gov=seed.d_gov)
        return packages[iso2]

    delegation = study.delegation()
    exposure = delegation.hijack_exposure()

    # Hijackable nameserver domains (highest severity).
    for dns_domain, victims in exposure.victims_by_dns.items():
        quote = exposure.available[dns_domain]
        for victim in victims:
            iso2 = exposure.victim_country.get(victim)
            if iso2 is None:
                continue
            package = package_for(iso2)
            if package is not None:
                package.findings.append(
                    Finding(
                        domain=victim,
                        kind="hijackable_ns_domain",
                        detail=(
                            f"nameserver domain {dns_domain} is open for "
                            f"registration (${quote.price_usd:,.2f})"
                        ),
                    )
                )

    # Defective delegations.
    hijack_victims = set(exposure.victim_domains)
    for report in delegation.reports().values():
        if not report.any_defect or report.domain in hijack_victims:
            continue
        package = package_for(report.iso2)
        if package is None:
            continue
        kind = (
            "fully_defective"
            if report.verdict == "fully_defective"
            else "partially_defective"
        )
        result = study.dataset()[report.domain]
        if kind == "fully_defective" and result.ns_count == 1:
            kind = "single_ns_stale"
        package.findings.append(
            Finding(
                domain=report.domain,
                kind=kind,
                detail=(
                    "broken nameservers: "
                    + ", ".join(str(h) for h in report.defective_ns[:4])
                ),
            )
        )

    # Consistency findings (dangling-responsive first, then mismatches).
    consistency = study.consistency()
    dangling = consistency.dangling_scan(delegation)
    dangling_victims = {
        victim: dns_domain
        for dns_domain, (_, victims) in dangling.items()
        for victim in victims
    }
    for report in consistency.reports().values():
        if report.consistent:
            continue
        package = package_for(report.iso2)
        if package is None:
            continue
        if report.domain in dangling_victims:
            package.findings.append(
                Finding(
                    domain=report.domain,
                    kind="dangling_responsive_ns",
                    detail=(
                        f"parent lists a nameserver under the lapsed domain "
                        f"{dangling_victims[report.domain]}"
                    ),
                )
            )
        elif report.has_single_label_ns:
            package.findings.append(
                Finding(
                    domain=report.domain,
                    kind="single_label_ns",
                    detail="an NS record contains a bare single-label name",
                )
            )
        else:
            exclusive = ", ".join(
                str(h) for h in (report.parent_only + report.child_only)[:4]
            )
            package.findings.append(
                Finding(
                    domain=report.domain,
                    kind="parent_child_mismatch",
                    detail=f"[{report.verdict}] exclusive records: {exclusive}",
                )
            )

    return {
        iso2: package for iso2, package in packages.items() if package.findings
    }


def render_package(package: DisclosurePackage) -> str:
    """The notification text for one operator."""
    lines = [
        f"Responsible disclosure — DNS findings for {package.d_gov}",
        "",
        "Dear operator,",
        "",
        "During a measurement study of government DNS deployments we",
        f"observed the following issues under {package.d_gov}. Findings",
        "are ordered by severity; remediation guidance follows each group.",
    ]
    for kind, findings in package.by_kind().items():
        lines.append("")
        lines.append(
            render_table(
                ["Domain", "Detail"],
                [[str(f.domain), f.detail] for f in findings[:25]],
                title=f"{kind} ({len(findings)} affected)",
            )
        )
        if len(findings) > 25:
            lines.append(f"  … and {len(findings) - 25} more")
        lines.append(f"  Recommended action: {findings[0].advice}")
    lines.append("")
    lines.append(
        "We are happy to share raw measurements on request. This notice "
        "was generated from active DNS lookups only; no zone transfer or "
        "intrusive technique was used."
    )
    return "\n".join(lines)
