"""Presentation layer: text tables, ASCII figures, CSV/JSON export."""

from .disclosure import (
    DisclosurePackage,
    Finding,
    build_disclosures,
    render_package,
)
from .export import to_csv, to_json, write_csv, write_json
from .paperkit import ARTIFACTS, export_all, render_all
from .perf import PerfRecord, PerfReport
from .resilience import ResilienceReport
from .figures import Distribution, Series, cdf_points, render_bars, render_series
from .tables import format_count, format_percent, render_table

__all__ = [
    "DisclosurePackage",
    "Finding",
    "build_disclosures",
    "render_package",
    "ARTIFACTS",
    "export_all",
    "render_all",
    "PerfRecord",
    "PerfReport",
    "ResilienceReport",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
    "Distribution",
    "Series",
    "cdf_points",
    "render_bars",
    "render_series",
    "format_count",
    "format_percent",
    "render_table",
]
