"""Figure data containers and ASCII rendering.

Every reproduced figure is materialized as a :class:`Series` (per-year
lines, CDFs) or :class:`Distribution` (per-country bars), with an ASCII
renderer so benchmark output shows the *shape* — which is what the
reproduction is graded on — without plotting dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Series", "Distribution", "render_series", "render_bars", "cdf_points"]


@dataclass(frozen=True)
class Series:
    """An (x, y) series — yearly trends, CDFs."""

    name: str
    points: Tuple[Tuple[float, float], ...]

    @classmethod
    def from_mapping(cls, name: str, mapping: Mapping) -> "Series":
        return cls(
            name,
            tuple(sorted((float(k), float(v)) for k, v in mapping.items())),
        )

    def y_values(self) -> Tuple[float, ...]:
        return tuple(y for _, y in self.points)


@dataclass(frozen=True)
class Distribution:
    """Labelled values — per-country bars, price distributions."""

    name: str
    values: Tuple[Tuple[str, float], ...]

    @classmethod
    def from_mapping(cls, name: str, mapping: Mapping) -> "Distribution":
        return cls(
            name,
            tuple(
                sorted(
                    ((str(k), float(v)) for k, v in mapping.items()),
                    key=lambda kv: -kv[1],
                )
            ),
        )

    def top(self, n: int) -> "Distribution":
        return Distribution(self.name, self.values[:n])


def cdf_points(histogram: Mapping[int, int]) -> Tuple[Tuple[float, float], ...]:
    """Turn a value→count histogram into CDF points."""
    total = sum(histogram.values())
    if total == 0:
        return ()
    points = []
    cumulative = 0
    for value in sorted(histogram):
        cumulative += histogram[value]
        points.append((float(value), cumulative / total))
    return tuple(points)


def _scaled_bar(value: float, maximum: float, width: int = 40) -> str:
    if maximum <= 0:
        return ""
    return "#" * max(1 if value > 0 else 0, round(value / maximum * width))


def render_series(
    series: Sequence[Series],
    title: str = "",
    y_format: str = "{:.0f}",
) -> str:
    """Render one or more series as aligned columns per x value."""
    xs: List[float] = sorted({x for s in series for x, _ in s.points})
    lines: List[str] = []
    if title:
        lines.append(title)
    header = ["x".rjust(8)] + [s.name.rjust(14) for s in series]
    lines.append(" ".join(header))
    lookup = [dict(s.points) for s in series]
    for x in xs:
        cells = [f"{x:8.0f}" if x == int(x) else f"{x:8.2f}"]
        for table in lookup:
            y = table.get(x)
            cells.append(
                (y_format.format(y) if y is not None else "-").rjust(14)
            )
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_bars(
    distribution: Distribution,
    title: str = "",
    limit: int = 20,
    value_format: str = "{:.1f}",
) -> str:
    """Horizontal ASCII bars, biggest first."""
    values = distribution.values[:limit]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(empty)")
        return "\n".join(lines)
    maximum = max(v for _, v in values)
    label_width = max(len(label) for label, _ in values)
    for label, value in values:
        lines.append(
            f"{label.ljust(label_width)} {value_format.format(value).rjust(10)} "
            f"{_scaled_bar(value, maximum)}"
        )
    return "\n".join(lines)
