"""Rendering for differential-oracle results (``repro oracle``)."""

from __future__ import annotations

import json
from typing import List

from .tables import render_table

__all__ = ["render_oracle_report", "render_oracle_summary", "oracle_json"]


def render_oracle_report(report) -> str:
    """One mode's outcome: agreement counts, then every disagreement
    with its classification."""
    rows = [["agreed", report.agreed]]
    for classification, count in sorted(report.counts().items()):
        rows.append([classification, count])
    title = f"oracle mode={report.mode}"
    if report.chaos_profile is not None:
        title += f" chaos={report.chaos_profile}"
    title += f" ({report.total} domains)"
    lines = [render_table(["Classification", "Domains"], rows, title=title)]
    for disagreement in report.disagreements:
        lines.append(
            f"  {disagreement.classification}: {disagreement.domain} "
            f"[{disagreement.iso2}] "
            f"fields={','.join(disagreement.fields)} — "
            f"{disagreement.detail}"
        )
    return "\n".join(lines)


def render_oracle_summary(reports: List) -> str:
    """Cross-mode verdict line for CI logs."""
    unexplained = sum(len(r.unexplained) for r in reports)
    modes = ", ".join(r.mode for r in reports)
    if unexplained:
        return (
            f"ORACLE FAIL: {unexplained} unexplained disagreement(s) "
            f"across modes [{modes}]"
        )
    return f"oracle ok: zero unexplained disagreements across [{modes}]"


def oracle_json(reports: List) -> str:
    """Machine-readable dump of every mode's report."""
    payload = []
    for report in reports:
        payload.append(
            {
                "mode": report.mode,
                "chaos_profile": report.chaos_profile,
                "total": report.total,
                "agreed": report.agreed,
                "counts": report.counts(),
                "disagreements": [
                    {
                        "domain": str(d.domain),
                        "iso2": d.iso2,
                        "fields": list(d.fields),
                        "classification": d.classification,
                        "detail": d.detail,
                    }
                    for d in report.disagreements
                ],
            }
        )
    return json.dumps(payload, indent=2)
