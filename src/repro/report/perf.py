"""Performance baselines for the measurement engine.

The probe engine's perf benchmark records, for each engine
configuration it exercises, how much the campaign cost in three
currencies:

* **wall-clock seconds** — real time spent driving the simulation;
* **simulated seconds** — how long the campaign took in virtual time
  (what a real deployment of the methodology would experience);
* **queries** — how many queries the prober issued (measurement plus
  infrastructure traffic), the paper's politeness currency.

Records are written to a single JSON file (``BENCH_probe.json``) so CI
can archive one artifact per run and successive runs can be compared
without re-parsing benchmark stdout.

The committed ``BENCH_probe.json`` doubles as a **regression gate**
(:func:`gate_report`): the deterministic counters — query totals,
responsive-domain counts, and the dataset digest — must match the
committed record exactly, while wall-clock fields are advisory only
(CI runner noise must not fail builds).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .export import to_json, write_json

__all__ = [
    "PerfRecord",
    "PerfReport",
    "PerfSuite",
    "gate_report",
    "gate_suite",
    "load_report_payload",
    "scale_payloads",
]

# Fields that are pure functions of (seed, scale, config): any drift is
# a real behaviour change, never runner noise.
GATED_FIELDS = (
    "targets",
    "queries_sent",
    "network_queries",
    "timeouts",
    "responsive_domains",
    "dataset_digest",
)


@dataclass(frozen=True)
class PerfRecord:
    """One engine configuration's campaign cost."""

    label: str
    max_in_flight: int
    zone_cut_caching: bool
    targets: int
    wall_seconds: float
    simulated_seconds: float
    active_seconds: float  # simulated minus configured inter-round waits
    queries_sent: int  # prober-issued series (walk + sweep + warm)
    network_queries: int  # every datagram, including NS-address resolution
    timeouts: int
    responsive_domains: int
    # sha256 of the canonical dataset serialization (see
    # repro.core.journal.dataset_digest); None for legacy records.
    dataset_digest: Optional[str] = None
    # Worker-process count for sharded records; None = in-process.
    shards: Optional[int] = None
    # Wall-clock decomposition, phase name → seconds (worldgen /
    # probe / merge / analysis).  Advisory, like all wall fields.
    phases: Optional[Dict[str, float]] = None


@dataclass
class PerfReport:
    """A set of perf records plus derived baseline-vs-config ratios."""

    scale: float
    seed: int
    records: List[PerfRecord] = field(default_factory=list)
    baseline_label: Optional[str] = None

    def add(self, record: PerfRecord, baseline: bool = False) -> None:
        if any(r.label == record.label for r in self.records):
            raise ValueError(f"duplicate perf record label: {record.label}")
        self.records.append(record)
        if baseline:
            self.baseline_label = record.label

    def get(self, label: str) -> PerfRecord:
        for record in self.records:
            if record.label == label:
                return record
        raise KeyError(f"no perf record labelled {label!r}")

    def reductions(self, label: str) -> Dict[str, float]:
        """Baseline-over-config ratios (>1 means the config is cheaper).

        ``queries_sent``, ``network_queries``, ``wall_seconds``, and
        ``active_seconds`` are each compared against the baseline
        record; a ratio of 2.0 reads "the baseline cost 2x more".
        """
        if self.baseline_label is None:
            raise ValueError("no baseline record marked")
        baseline = self.get(self.baseline_label)
        record = self.get(label)
        ratios: Dict[str, float] = {}
        for metric in (
            "queries_sent",
            "network_queries",
            "wall_seconds",
            "active_seconds",
        ):
            cost = getattr(record, metric)
            ratios[metric] = (
                float("inf") if cost == 0 else getattr(baseline, metric) / cost
            )
        return ratios

    def payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scale": self.scale,
            "seed": self.seed,
            "baseline": self.baseline_label,
            "records": {record.label: record for record in self.records},
        }
        if self.baseline_label is not None:
            out["reductions_vs_baseline"] = {
                record.label: self.reductions(record.label)
                for record in self.records
                if record.label != self.baseline_label
            }
        return out

    def to_json(self) -> str:
        return to_json(self.payload())

    def write(self, path: str) -> None:
        write_json(path, self.payload())


@dataclass
class PerfSuite:
    """Per-scale :class:`PerfReport` collection under one seed.

    ``BENCH_probe.json`` historically held a single report at one
    scale; the suite format (``"format": 2``) keys full reports by
    scale so the regression gate covers *every* committed scale, not
    just the one the CLI happened to be invoked with.
    """

    seed: int
    reports: Dict[float, PerfReport] = field(default_factory=dict)

    def add(self, report: PerfReport) -> None:
        if report.seed != self.seed:
            raise ValueError(
                f"report seed {report.seed} != suite seed {self.seed}"
            )
        if report.scale in self.reports:
            raise ValueError(f"duplicate suite scale: {report.scale}")
        self.reports[report.scale] = report

    def payload(self) -> Dict[str, object]:
        return {
            "format": 2,
            "seed": self.seed,
            "scales": {
                str(scale): self.reports[scale].payload()
                for scale in sorted(self.reports)
            },
        }

    def to_json(self) -> str:
        return to_json(self.payload())

    def write(self, path: str) -> None:
        write_json(path, self.payload())


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def load_report_payload(path: str) -> Dict[str, object]:
    """Read a previously written BENCH_probe.json payload."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def scale_payloads(committed: Dict[str, object]) -> Dict[float, Dict[str, object]]:
    """Per-scale report payloads from a committed file, either format.

    Suite files (``"format": 2``) carry a ``scales`` mapping; legacy
    single-report files *are* the payload and declare their own scale.
    """
    scales = committed.get("scales")
    if isinstance(scales, dict):
        out: Dict[float, Dict[str, object]] = {}
        for key, payload in scales.items():
            assert isinstance(payload, dict)
            out[float(key)] = payload
        return out
    return {float(committed["scale"]): committed}  # type: ignore[arg-type]


def gate_suite(
    current: "PerfSuite", committed: Dict[str, object]
) -> List[str]:
    """Gate a fresh suite against a committed payload, every scale.

    Each scale committed to the baseline file must be present in the
    current run and pass :func:`gate_report`; scales only present in
    the current run are allowed (that is how a scale is introduced).
    """
    violations: List[str] = []
    for scale, payload in sorted(scale_payloads(committed).items()):
        report = current.reports.get(scale)
        if report is None:
            violations.append(
                f"scale {scale} present in committed baseline but "
                f"missing from this run"
            )
            continue
        violations.extend(
            f"scale {scale}: {violation}"
            for violation in gate_report(report, payload)
        )
    return violations


def gate_report(
    current: PerfReport, committed: Dict[str, object]
) -> List[str]:
    """Compare a fresh report against the committed baseline payload.

    Returns a list of violation strings (empty = gate passes).  The
    deterministic counters in :data:`GATED_FIELDS` must match exactly;
    wall-clock fields are never compared.  A record present in the
    committed file but absent from the current run is a violation (a
    silently dropped configuration is a regression too); new records in
    the current run are allowed (that is how a record is introduced).

    All violations are reported in one pass: an identity mismatch does
    not short-circuit the record-level comparisons, so a run that both
    drifted a field and was taken at the wrong seed reports both facts
    instead of hiding the field drift behind the identity error.
    """
    violations: List[str] = []
    for key in ("seed", "scale"):
        committed_value = committed.get(key)
        current_value = getattr(current, key)
        if committed_value != current_value:
            violations.append(
                f"benchmark identity mismatch: {key} is {current_value}, "
                f"committed file was recorded at {committed_value}"
            )
    records = committed.get("records")
    if not isinstance(records, dict):
        violations.append("committed payload has no records mapping")
        return violations
    for label in sorted(records):
        reference = records[label]
        try:
            record = current.get(label)
        except KeyError:
            violations.append(
                f"record {label!r} present in committed baseline but "
                f"missing from this run"
            )
            continue
        assert isinstance(reference, dict)
        for fieldname in GATED_FIELDS:
            expected = reference.get(fieldname)
            if expected is None:
                continue  # legacy record predating the field
            actual = getattr(record, fieldname)
            if actual != expected:
                violations.append(
                    f"{label}.{fieldname}: {actual!r} != committed "
                    f"{expected!r}"
                )
    return violations
