"""The probe benchmark suite behind ``repro bench``.

One entrypoint — :func:`run_probe_bench` — runs the campaign under each
engine configuration on identically-seeded worlds, decomposes the
wall-clock cost per phase (worldgen / probe / merge / analysis), stamps
every record with the dataset digest, and writes ``BENCH_probe.json``.
Both the CLI subcommand and ``benchmarks/test_perf_probe.py`` call it,
so CI, pytest-benchmark, and humans measure exactly the same thing.

``--check`` mode (:func:`check_probe_bench`) is the perf-regression
gate: the deterministic counters and dataset digests in a fresh run
must match the committed ``BENCH_probe.json`` byte-for-byte, while
wall-clock numbers are advisory only (CI runners are noisy; counters
are not).

This module intentionally reads the host's real clock — it *measures*
wall time, which is the one place the determinism lint must not apply;
the inline suppressions below mark each deliberate call site.
"""

from __future__ import annotations

import cProfile
import gc
import pstats
import time
from typing import Dict, List, Optional, Tuple

from ..core.epoch import EpochRunner
from ..core.journal import dataset_digest
from ..core.probe import ActiveProber, ProbeConfig
from ..core.shard import ProcessCampaignRunner, government_suffixes
from ..core.study import GovernmentDnsStudy
from ..worldgen.config import WorldConfig
from ..worldgen.generator import WorldGenerator
from .perf import (
    PerfRecord,
    PerfReport,
    PerfSuite,
    gate_suite,
    load_report_payload,
)

__all__ = [
    "BENCH_CONFIGS",
    "DEFAULT_SHARDS",
    "LONGITUDINAL_EPOCHS",
    "LONGITUDINAL_LABELS",
    "check_probe_bench",
    "collect_hotspots",
    "render_hotspot_table",
    "run_longitudinal_record",
    "run_probe_bench",
    "run_probe_record",
    "run_probe_suite",
]

# The sharded record is committed at a fixed K: its network-query total
# depends on K (each worker warms its own cache), so the CI gate needs
# one canonical shard count rather than "however many cores the runner
# had".  Wall-clock still benefits from more cores at fixed K=4 only up
# to 4; the CLI lets humans pass --shards auto for real speed runs.
DEFAULT_SHARDS = 4

BENCH_CONFIGS: Dict[str, Dict[str, object]] = {
    "serial": {"max_in_flight": 1, "zone_cut_caching": False},
    "concurrent": {"max_in_flight": 64, "zone_cut_caching": True},
    "sharded": {"max_in_flight": 64, "zone_cut_caching": True},
}

# The longitudinal epoch suite: both labels run the same churn sequence
# on identically-seeded worlds with the concurrent engine — the *full*
# label re-probes the whole universe each epoch (the naive baseline),
# the *incremental* label probes only what the change sensor implicates
# plus the audit sample.  Equal final dataset digests certify the two
# measured the same thing; the gated query counters record how much
# cheaper the incremental loop is per steady-state epoch.
LONGITUDINAL_LABELS = ("longitudinal_full", "longitudinal_incremental")
LONGITUDINAL_EPOCHS = 3


def _now() -> float:
    return time.perf_counter()  # reprolint: disable=DET001


def run_probe_record(
    label: str,
    seed: int,
    scale: float,
    shards: Optional[int] = None,
    profiler: Optional[cProfile.Profile] = None,
) -> PerfRecord:
    """Run one configuration's full campaign and measure everything.

    ``shards`` only applies to the ``sharded`` label (None there means
    :data:`DEFAULT_SHARDS`).  When ``profiler`` is given it is enabled
    around the probe, merge, and analysis phases only — worldgen is
    out of scope for the hotspot table, and for the sharded label the
    worker processes are opaque (only spawn/collect/merge appear).
    """
    if label not in BENCH_CONFIGS:
        raise ValueError(f"unknown bench config: {label!r}")
    config = ProbeConfig(**BENCH_CONFIGS[label])  # type: ignore[arg-type]
    shard_count = (
        (shards if shards is not None else DEFAULT_SHARDS)
        if label == "sharded"
        else None
    )
    phases: Dict[str, float] = {}

    mark = _now()
    world = WorldGenerator(WorldConfig(seed=seed, scale=scale)).generate()
    study = GovernmentDnsStudy(world, probe_config=config)
    targets = study.targets()
    # The generated world is immutable and lives for the whole record:
    # move it to the GC's permanent generation so the cycle detector
    # never rescans it during the phases we are measuring (the
    # CPython long-lived-base-state pattern; forked shard workers get
    # the frozen heap copy-on-write for free).  Undone at record end.
    gc.freeze()
    phases["worldgen"] = _now() - mark

    sim_start = world.clock.now
    base_network_queries = world.network.stats.queries_sent
    base_timeouts = world.network.stats.timeouts
    if shard_count is not None:
        runner = ProcessCampaignRunner(
            world,
            targets,
            config,
            shards=shard_count,
            suffixes=government_suffixes(study.seeds().values()),
        )
        if profiler is not None:
            profiler.enable()
        mark = _now()
        collected = runner.collect()
        phases["probe"] = _now() - mark
        mark = _now()
        dataset = runner.merge(collected)
        phases["merge"] = _now() - mark
        if profiler is not None:
            profiler.disable()
        study._dataset = dataset
        queries_sent = sum(s.queries_sent for s in runner.shard_stats)
        network_queries = base_network_queries + sum(
            s.network_queries for s in runner.shard_stats
        )
        timeouts = base_timeouts + sum(
            s.timeouts for s in runner.shard_stats
        )
        # Workers advance private clock copies; campaign duration in
        # virtual time is the slowest shard's.
        simulated = max(
            (s.simulated_seconds for s in runner.shard_stats), default=0.0
        )
    else:
        prober = ActiveProber(
            world.network,
            world.root_addresses,
            world.probe_source,
            config=config,
        )
        if profiler is not None:
            profiler.enable()
        mark = _now()
        dataset = prober.probe_all(targets)
        phases["probe"] = _now() - mark
        if profiler is not None:
            profiler.disable()
        phases["merge"] = 0.0
        study._dataset = dataset
        queries_sent = prober.queries_sent
        network_queries = world.network.stats.queries_sent
        timeouts = world.network.stats.timeouts
        simulated = world.clock.now - sim_start

    # Same pattern for the finished dataset: it is read-only from here
    # on, so freeze it too — the analyses then run against an empty
    # young heap and the collector has nothing old to rescan.
    gc.freeze()

    if profiler is not None:
        profiler.enable()
    mark = _now()
    study.delegation().reports()
    study.consistency().reports()
    phases["analysis"] = _now() - mark
    if profiler is not None:
        profiler.disable()

    # Record isolation: hand the heap back to the collector and reap
    # this record's cycles now, so the next record's phases never pay
    # for this one's garbage.
    gc.unfreeze()
    gc.collect()

    # The inter-round wait is methodology, not engine cost: subtract it
    # to compare what the engine actually controls.  The analyses above
    # materialized the columnar store, so the counters below are free
    # column scans.
    retried = 1 in dataset.columns.retried
    waits = config.retry_interval_days * 86_400 if retried else 0.0
    return PerfRecord(
        label=label,
        max_in_flight=config.max_in_flight,
        zone_cut_caching=config.zone_cut_caching,
        targets=len(targets),
        # Campaign cost only (probe + merge): worldgen and analysis are
        # identical across configurations and would dilute the ratios.
        wall_seconds=round(phases["probe"] + phases["merge"], 3),
        simulated_seconds=round(simulated, 3),
        active_seconds=round(simulated - waits, 3),
        queries_sent=queries_sent,
        network_queries=network_queries,
        timeouts=timeouts,
        responsive_domains=dataset.columns.responsive.count(1),
        dataset_digest=dataset_digest(dataset),
        shards=shard_count,
        phases={name: round(phases[name], 3) for name in sorted(phases)},
    )


def run_longitudinal_record(
    label: str,
    seed: int,
    scale: float,
    epochs: int = LONGITUDINAL_EPOCHS,
    profiler: Optional[cProfile.Profile] = None,
) -> PerfRecord:
    """Run one longitudinal mode's full epoch loop and measure it.

    The gated counters are *steady-state* totals (epochs 1..N; the
    bootstrap campaign is identical in both modes and would dilute the
    ratio), while ``responsive_domains`` and ``dataset_digest`` are the
    final epoch's — the digest doubling as the incremental-vs-full
    equivalence certificate.
    """
    if label not in LONGITUDINAL_LABELS:
        raise ValueError(f"unknown longitudinal config: {label!r}")
    config = ProbeConfig(**BENCH_CONFIGS["concurrent"])  # type: ignore[arg-type]
    incremental = label == "longitudinal_incremental"
    phases: Dict[str, float] = {}

    mark = _now()
    world = WorldGenerator(WorldConfig(seed=seed, scale=scale)).generate()
    runner = EpochRunner(world, probe_config=config, incremental=incremental)
    gc.freeze()
    phases["worldgen"] = _now() - mark

    if profiler is not None:
        profiler.enable()
    mark = _now()
    runner.bootstrap()
    phases["epoch0"] = _now() - mark
    mark = _now()
    for _ in range(epochs):
        runner.run_epoch()
    phases["epochs"] = _now() - mark
    if profiler is not None:
        profiler.disable()

    gc.unfreeze()
    gc.collect()

    steady = runner.stats[1:]
    final = runner.stats[-1]
    simulated = sum(s.simulated_seconds for s in steady)
    return PerfRecord(
        label=label,
        max_in_flight=config.max_in_flight,
        zone_cut_caching=config.zone_cut_caching,
        targets=len(runner.targets),
        # Steady-state epoch cost only: bootstrap is shared overhead.
        wall_seconds=round(phases["epochs"], 3),
        simulated_seconds=round(simulated, 3),
        active_seconds=round(simulated, 3),
        queries_sent=sum(s.queries_sent for s in steady),
        network_queries=sum(s.network_queries for s in steady),
        timeouts=sum(s.timeouts for s in steady),
        responsive_domains=final.responsive,
        dataset_digest=final.epoch_digest,
        shards=None,
        phases={name: round(phases[name], 3) for name in sorted(phases)},
    )


def run_probe_bench(
    seed: int,
    scale: float,
    shards: Optional[int] = None,
    labels: Tuple[str, ...] = ("serial", "concurrent", "sharded"),
    profiler: Optional[cProfile.Profile] = None,
) -> PerfReport:
    """Run the benchmark suite; ``serial`` (when present) is the
    baseline for reduction ratios.  Longitudinal labels dispatch to the
    epoch-suite runner; everything else is a one-shot campaign."""
    report = PerfReport(scale=scale, seed=seed)
    for label in labels:
        if label in LONGITUDINAL_LABELS:
            record = run_longitudinal_record(
                label, seed, scale, profiler=profiler
            )
        else:
            record = run_probe_record(
                label, seed, scale, shards=shards, profiler=profiler
            )
        report.add(record, baseline=(label == "serial"))
    return report


def run_probe_suite(
    seed: int,
    scales: Tuple[float, ...],
    shards: Optional[int] = None,
    labels: Tuple[str, ...] = ("serial", "concurrent", "sharded"),
    profiler: Optional[cProfile.Profile] = None,
) -> PerfSuite:
    """Run the full benchmark at each scale into one suite."""
    suite = PerfSuite(seed=seed)
    for scale in scales:
        suite.add(
            run_probe_bench(
                seed, scale, shards=shards, labels=labels, profiler=profiler
            )
        )
    return suite


def check_probe_bench(suite: PerfSuite, committed_path: str) -> List[str]:
    """Gate a fresh suite against the committed baseline file.

    Every scale present in the committed file is checked (suite files
    carry several; legacy single-report files carry one).
    """
    return gate_suite(suite, load_report_payload(committed_path))


# ----------------------------------------------------------------------
# Hotspot profiling (``repro bench --profile``)
# ----------------------------------------------------------------------
def _short_location(filename: str, lineno: int, name: str) -> str:
    """``pkg/module.py:123(func)`` with site-packages noise stripped."""
    if name == "<built-in method builtins.exec>":
        return name
    for marker in ("/repro/", "/lib/python"):
        cut = filename.rfind(marker)
        if cut != -1:
            filename = filename[cut + 1 :]
            break
    if filename.startswith("~"):  # pstats' marker for built-ins
        return name
    return f"{filename}:{lineno}({name})"


def collect_hotspots(
    profiler: cProfile.Profile, top: int = 25
) -> List[Dict[str, object]]:
    """Top-``top`` functions by cumulative time, as JSON-ready rows."""
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, object]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "function": _short_location(filename, lineno, name),
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
            }
        )
    return rows


def render_hotspot_table(rows: List[Dict[str, object]]) -> str:
    """Fixed-width text rendering of :func:`collect_hotspots` rows."""
    lines = [
        f"{'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function",
        f"{'-' * 10} {'-' * 9} {'-' * 9}  {'-' * 40}",
    ]
    for row in rows:
        lines.append(
            f"{row['ncalls']:>10} {row['tottime']:>9.3f} "
            f"{row['cumtime']:>9.3f}  {row['function']}"
        )
    return "\n".join(lines)
