"""Plain-text table rendering.

The benchmark harness prints each reproduced table in the same shape as
the paper's; this module owns the alignment/formatting so every bench
target renders consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_percent", "format_count"]


def format_percent(value: float, digits: int = 1) -> str:
    """0.8931 → ``89.3%``."""
    return f"{value * 100:.{digits}f}%"


def format_count(value: float) -> str:
    """12345 → ``12,345``."""
    return f"{int(round(value)):,}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    materialized: List[List[str]] = [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)
