"""The lint engine: parse once, walk once, dispatch to every rule.

A :class:`Rule` declares which AST node types it wants via ``interests``
and receives each matching node exactly once per file, together with a
:class:`ModuleContext` carrying the parse tree, source lines, and a
resolved import map (so ``dt.datetime.now`` is recognisable as
``datetime.datetime.now`` regardless of aliasing).

Inline suppression: a ``# reprolint: disable=RULE1,RULE2`` (or
``disable=all``) comment on the offending line silences those rules for
that line only.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .findings import Finding, Severity

__all__ = [
    "ModuleContext",
    "Rule",
    "LintEngine",
    "default_rules",
    "iter_python_files",
]

_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class ModuleContext:
    """Everything a rule may need about the file being checked."""

    path: str  # normalised (posix, root-relative when possible)
    tree: ast.Module
    lines: Sequence[str]
    imports: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        """Stripped source text of a 1-based line (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def dotted_name(self, node: ast.expr) -> Optional[str]:
        """Flatten a ``Name``/``Attribute`` chain to ``a.b.c`` text.

        Returns ``None`` when the chain hangs off anything else (a call
        result, a subscript, ...).
        """
        parts: List[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        return ".".join(parts)

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully-qualify a dotted name through the module's imports.

        ``dt.datetime.now`` resolves to ``datetime.datetime.now`` after
        ``import datetime as dt``; names with no import binding come back
        verbatim so rules can still pattern-match local identifiers.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        mapped = self.imports.get(head)
        if mapped is None:
            return dotted
        return f"{mapped}.{rest}" if rest else mapped

    def imports_module(self, module: str) -> bool:
        """True when ``module`` (or a member of it) is imported here."""
        prefix = module + "."
        return any(
            target == module or target.startswith(prefix)
            for target in self.imports.values()
        )


class Rule:
    """Base class / protocol for lint rules.

    Subclasses set the class attributes and implement :meth:`visit`,
    yielding a :class:`Finding` for each violation.  Rules must be
    stateless across files (a fresh walk shares one instance).
    """

    rule_id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    interests: Tuple[Type[ast.AST], ...] = ()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self, node: ast.AST, ctx: ModuleContext, message: str
    ) -> Finding:
        """Build a Finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=ctx.path,
            line=lineno,
            column=column,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            snippet=ctx.line_text(lineno),
        )


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local alias → fully-qualified origin for every import."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{module}.{alias.name}" if module else alias.name
    return imports


def _collect_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number → rule ids disabled on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for index, line in enumerate(lines, start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        rules = {token.strip() for token in match.group(1).split(",")}
        suppressions[index] = {token for token in rules if token}
    return suppressions


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = (path,)
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def default_rules() -> List[Rule]:
    """One instance of every registered rule, in rule-id order."""
    from .rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


class LintEngine:
    """Parses each file once and dispatches AST nodes to all rules."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = (
            list(rules) if rules is not None else default_rules()
        )
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)

    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str) -> List[Finding]:
        """Lint one module's source text (``path`` is for reporting)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    rule_id="PARSE",
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        lines = source.splitlines()
        ctx = ModuleContext(
            path=path,
            tree=tree,
            lines=lines,
            imports=_collect_imports(tree),
        )
        suppressions = _collect_suppressions(lines)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                for finding in rule.visit(node, ctx):
                    disabled = suppressions.get(finding.line, set())
                    if "all" in disabled or finding.rule_id in disabled:
                        continue
                    findings.append(finding)
        findings.sort()
        return findings

    def lint_file(self, path: Path, root: Optional[Path] = None) -> List[Finding]:
        """Lint one file; paths are reported relative to ``root``."""
        display = _display_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Finding(
                    path=display,
                    line=1,
                    column=1,
                    rule_id="IO",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            ]
        return self.lint_source(source, display)

    def lint_paths(
        self, paths: Sequence[Path], root: Optional[Path] = None
    ) -> List[Finding]:
        """Lint files and directory trees; returns all findings sorted."""
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path, root))
        findings.sort()
        return findings


def _display_path(path: Path, root: Optional[Path]) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
