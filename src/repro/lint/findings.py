"""Finding and severity value types shared by the engine, rules, and
reporters."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Tuple


def normalize_snippet(text: str) -> str:
    """Whitespace-normalize an offending line for fingerprinting.

    Collapsing interior runs and stripping the ends makes the
    fingerprint survive re-indentation and formatting-only edits, which
    are exactly the line drifts a baseline should not churn on.
    """
    return " ".join(text.split())


def snippet_digest(text: str) -> str:
    """Short stable hash of the normalized snippet (fingerprint part)."""
    normalized = normalize_snippet(text)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]


class Severity(enum.Enum):
    """How bad a finding is.

    Exit status does not depend on severity — any non-baselined finding
    fails the run — but reporters surface it (SARIF ``level``, text
    prefix) so readers can triage.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def sarif_level(self) -> str:
        return str(self.value)


@dataclass(frozen=True, order=True)
class TraceHop:
    """One step on a finding's source→sink path.

    Interprocedural findings (the ``flowlint`` family) carry the whole
    path a tainted value travelled: where nondeterminism entered, every
    call boundary it crossed, and the sink it reached.  Reporters
    render the hops as SARIF ``codeFlows``/``threadFlows`` plus
    ``relatedLocations``.
    """

    path: str
    line: int
    column: int
    note: str = ""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped text of the offending line; a hash of
    its whitespace-normalized form, together with ``path`` and
    ``rule_id``, is the baseline fingerprint — deliberately
    line-number-free so unrelated edits above a grandfathered finding
    do not un-baseline it, and whitespace-insensitive so reformatting
    does not either.  ``trace`` (empty for single-location findings)
    is the ordered source→sink hop list and stays outside the
    fingerprint: a re-routed flow to the same sink is still the same
    grandfathered finding.
    """

    path: str
    line: int
    column: int
    rule_id: str
    severity: Severity
    message: str
    snippet: str = ""
    trace: Tuple[TraceHop, ...] = field(default=(), compare=False)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Stable identity for baseline matching:
        ``(rule, path, hash(normalized snippet))``."""
        return (self.rule_id, self.path, snippet_digest(self.snippet))

    def render(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity.value} [{self.rule_id}] {self.message}"
        )
