"""Finding and severity value types shared by the engine, rules, and
reporters."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    Exit status does not depend on severity — any non-baselined finding
    fails the run — but reporters surface it (SARIF ``level``, text
    prefix) so readers can triage.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def sarif_level(self) -> str:
        return str(self.value)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped text of the offending line; together with
    ``path`` and ``rule_id`` it forms the baseline fingerprint, which is
    deliberately line-number-free so unrelated edits above a
    grandfathered finding do not un-baseline it.
    """

    path: str
    line: int
    column: int
    rule_id: str
    severity: Severity
    message: str
    snippet: str = ""

    def fingerprint(self) -> Tuple[str, str, str]:
        """Stable identity for baseline matching."""
        return (self.rule_id, self.path, self.snippet)

    def render(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity.value} [{self.rule_id}] {self.message}"
        )
