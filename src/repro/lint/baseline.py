"""Baseline (ratchet) support.

A committed JSON file lists grandfathered findings by fingerprint
(rule id, path, offending-line text — deliberately no line number, so
edits elsewhere in a file do not un-baseline a finding).  On a lint run:

* findings matching a baseline entry are reported as *baselined* and do
  not fail the build;
* findings not in the baseline are *new* and fail the build;
* baseline entries matching nothing are *stale* and reported so the
  file can be re-generated tighter (``--write-baseline``).

The ratchet only ever loosens explicitly: regenerating the baseline is a
reviewed change to a committed file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = ["Baseline", "BaselineMatch", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "reprolint-baseline.json"

_FORMAT_VERSION = 1

_Fingerprint = Tuple[str, str, str]


@dataclass
class BaselineMatch:
    """Partition of a run's findings against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[_Fingerprint] = field(default_factory=list)


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: Sequence[_Fingerprint] = ()) -> None:
        self._counts: Dict[_Fingerprint, int] = {}
        for entry in entries:
            self._counts[entry] = self._counts.get(entry, 0) + 1

    def __len__(self) -> int:
        return sum(self._counts.values())

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls([finding.fingerprint() for finding in findings])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(f"malformed baseline {path}: missing 'findings'")
        entries: List[_Fingerprint] = []
        for row in payload["findings"]:
            entries.append(
                (
                    str(row["rule"]),
                    str(row["path"]),
                    str(row.get("snippet", "")),
                )
            )
        return cls(entries)

    def dump(self, path: Path) -> None:
        """Write the baseline, sorted for stable diffs."""
        rows = []
        for (rule, file_path, snippet), count in sorted(self._counts.items()):
            for _ in range(count):
                rows.append({"rule": rule, "path": file_path, "snippet": snippet})
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Grandfathered reprolint findings. New findings fail the "
                "build; regenerate with: python -m repro.lint src/ "
                "--write-baseline"
            ),
            "findings": rows,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    def match(self, findings: Sequence[Finding]) -> BaselineMatch:
        """Split findings into new vs baselined; report stale entries."""
        remaining = dict(self._counts)
        result = BaselineMatch()
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.baselined.append(finding)
            else:
                result.new.append(finding)
        for key, count in sorted(remaining.items()):
            result.stale.extend([key] * count)
        return result
