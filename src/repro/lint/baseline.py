"""Baseline (ratchet) support.

A committed JSON file lists grandfathered findings by fingerprint
(rule id, path, hash of the whitespace-normalized offending line —
deliberately no line number, so edits elsewhere in a file do not
un-baseline a finding, and no raw whitespace, so reformatting does not
either).  On a lint run:

* findings matching a baseline entry are reported as *baselined* and do
  not fail the build;
* findings not in the baseline are *new* and fail the build;
* baseline entries matching nothing are *stale* and reported so the
  file can be re-generated tighter (``--write-baseline``).

Format versions
---------------
``version: 1`` rows carried the raw snippet text as the fingerprint
part; ``version: 2`` rows carry the normalized line (for human review)
plus its hash, and may attach a ``justification`` string explaining why
the finding is grandfathered.  Version-1 files are migrated on load by
hashing their snippets; the next ``--write-baseline`` rewrites them as
version 2 (justifications are preserved across regeneration by
fingerprint).

The ratchet only ever loosens explicitly: regenerating the baseline is a
reviewed change to a committed file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding, normalize_snippet, snippet_digest

__all__ = ["Baseline", "BaselineMatch", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "reprolint-baseline.json"

_FORMAT_VERSION = 2

# (rule id, path, snippet-hash) — what Finding.fingerprint() returns.
_Fingerprint = Tuple[str, str, str]


@dataclass
class BaselineMatch:
    """Partition of a run's findings against a baseline.

    ``stale`` entries are ``(rule, path, display_line)`` — the stored
    normalized line, not the hash, so reports stay readable.
    """

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[Tuple[str, str, str]] = field(default_factory=list)


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(
        self,
        entries: Sequence[Tuple[str, str, str]] = (),
        justifications: Optional[Dict[_Fingerprint, str]] = None,
        display: Optional[Dict[_Fingerprint, str]] = None,
    ) -> None:
        """``entries`` are ``(rule, path, snippet_text)`` triples; the
        snippet is normalized and hashed here so callers never build
        fingerprints by hand."""
        self._counts: Dict[_Fingerprint, int] = {}
        self._display: Dict[_Fingerprint, str] = dict(display or {})
        self._justifications: Dict[_Fingerprint, str] = dict(
            justifications or {}
        )
        for rule, path, snippet in entries:
            key = (rule, path, snippet_digest(snippet))
            self._counts[key] = self._counts.get(key, 0) + 1
            self._display.setdefault(key, normalize_snippet(snippet))

    def __len__(self) -> int:
        return sum(self._counts.values())

    def justification_for(self, fingerprint: _Fingerprint) -> Optional[str]:
        return self._justifications.get(fingerprint)

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        previous: Optional["Baseline"] = None,
    ) -> "Baseline":
        """Build a baseline from live findings.

        ``previous`` carries justifications forward by fingerprint, so
        regenerating (``--write-baseline``) never silently drops the
        reviewer-facing rationale for a grandfathered finding.
        """
        instance = cls(
            [(f.rule_id, f.path, f.snippet) for f in findings]
        )
        if previous is not None:
            for key in instance._counts:
                note = previous._justifications.get(key)
                if note is not None:
                    instance._justifications[key] = note
        return instance

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Accepts both format versions: v1 rows (``snippet``) are hashed
        on the fly, v2 rows (``line`` + ``hash``) trust the stored hash
        when present so hand-edited normalized lines stay matched.
        """
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(f"malformed baseline {path}: missing 'findings'")
        instance = cls()
        for row in payload["findings"]:
            rule = str(row["rule"])
            file_path = str(row["path"])
            if "hash" in row:
                digest = str(row["hash"])
                shown = normalize_snippet(str(row.get("line", "")))
            else:
                # Version-1 row: fingerprint from the raw snippet.
                snippet = str(row.get("snippet", row.get("line", "")))
                digest = snippet_digest(snippet)
                shown = normalize_snippet(snippet)
            key = (rule, file_path, digest)
            instance._counts[key] = instance._counts.get(key, 0) + 1
            instance._display.setdefault(key, shown)
            if row.get("justification"):
                instance._justifications.setdefault(
                    key, str(row["justification"])
                )
        return instance

    def dump(self, path: Path) -> None:
        """Write the baseline (format version 2), sorted for stable
        diffs."""
        rows = []
        for key, count in sorted(self._counts.items()):
            rule, file_path, digest = key
            for _ in range(count):
                row = {
                    "rule": rule,
                    "path": file_path,
                    "line": self._display.get(key, ""),
                    "hash": digest,
                }
                note = self._justifications.get(key)
                if note is not None:
                    row["justification"] = note
                rows.append(row)
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Grandfathered reprolint findings. New findings fail the "
                "build; regenerate with: python -m repro.lint src/ "
                "--write-baseline"
            ),
            "findings": rows,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    def prune(
        self, root: Optional[Path] = None
    ) -> Tuple["Baseline", List[Tuple[str, str, str]]]:
        """Drop rows that can no longer match anything on disk.

        A row is dead when its file no longer exists, or when no line of
        the (current) file hashes to the stored fingerprint — the code
        the row grandfathered has been deleted or rewritten.  Returns
        ``(pruned baseline, dropped rows)`` with dropped rows as
        ``(rule, path, display_line)`` triples; justifications and
        display lines of surviving rows are preserved.

        This is a *syntactic* liveness check, deliberately cheaper than
        a lint run: a row whose line still exists but no longer fires
        is reported as stale by :meth:`match` instead.
        """
        base = root if root is not None else Path(".")
        digest_cache: Dict[str, Optional[Set[str]]] = {}
        kept = Baseline()
        dropped: List[Tuple[str, str, str]] = []
        for key, count in sorted(self._counts.items()):
            rule, file_path, digest = key
            if file_path not in digest_cache:
                candidate = base / file_path
                if not candidate.is_file():
                    digest_cache[file_path] = None
                else:
                    try:
                        text = candidate.read_text(encoding="utf-8")
                    except (OSError, UnicodeDecodeError):
                        digest_cache[file_path] = None
                    else:
                        digest_cache[file_path] = {
                            snippet_digest(line)
                            for line in text.splitlines()
                        }
            live_digests = digest_cache[file_path]
            if live_digests is None or digest not in live_digests:
                dropped.extend(
                    [(rule, file_path, self._display.get(key, ""))] * count
                )
                continue
            kept._counts[key] = count
            shown = self._display.get(key)
            if shown is not None:
                kept._display[key] = shown
            note = self._justifications.get(key)
            if note is not None:
                kept._justifications[key] = note
        return kept, dropped

    # ------------------------------------------------------------------
    def match(self, findings: Sequence[Finding]) -> BaselineMatch:
        """Split findings into new vs baselined; report stale entries."""
        remaining = dict(self._counts)
        result = BaselineMatch()
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.baselined.append(finding)
            else:
                result.new.append(finding)
        for key, count in sorted(remaining.items()):
            rule, file_path, _ = key
            shown = self._display.get(key, "")
            result.stale.extend([(rule, file_path, shown)] * count)
        return result
