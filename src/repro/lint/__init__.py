"""reprolint — AST-based invariant checker for this reproduction.

The repository's claim to validity rests on two properties that ordinary
linters do not check:

* **Determinism** — every figure and table must be bit-for-bit
  reproducible from a world seed.  Wall-clock reads, global-RNG calls,
  and unsorted set iteration all silently break that.
* **Semantic fidelity** — the resolver pipeline must respect DNS
  case-insensitivity (:class:`repro.dns.name.DnsName`, never raw string
  comparison) and explicit timeout/retry policy, the way the paper's
  active measurement did.

``reprolint`` parses every file once, walks the AST once, and dispatches
each node to every registered :class:`~repro.lint.engine.Rule`.  Findings
can be suppressed inline (``# reprolint: disable=RULE``) or grandfathered
in a committed baseline file; *new* findings always fail the build (a
ratchet).

Run it as ``python -m repro.lint src/`` or ``repro lint src/``.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import LintEngine, ModuleContext, Rule, default_rules
from .findings import Finding, Severity
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintEngine",
    "ModuleContext",
    "Rule",
    "Severity",
    "default_rules",
]
