"""Command-line front end: ``python -m repro.lint`` and ``repro lint``.

Exit status: 0 when no non-baselined findings, 1 when new findings
exist, 2 on usage errors.  ``configure_parser`` is shared with the main
``repro`` CLI so both entry points accept identical options.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Any, List, Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import LintEngine
from .findings import Finding
from .flow import FLOW_RULES, analyze_paths as analyze_flow
from .output import FORMATS, render_json, render_sarif, render_text

__all__ = ["build_parser", "configure_parser", "run", "main"]

_VERSION = "1.1.0"

ANALYZERS = ("ast", "flow", "all")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach reprolint's options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file for grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="re-generate the baseline from this run's findings and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding is treated as new",
    )
    parser.add_argument(
        "--analyzer",
        choices=ANALYZERS,
        default="all",
        help=(
            "which analyzer family to run: 'ast' (per-line syntactic "
            "rules), 'flow' (interprocedural dataflow/concurrency), or "
            "'all' (default)"
        ),
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "drop baseline rows whose file no longer exists or whose "
            "fingerprinted line no longer appears, rewrite the file, "
            "and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based invariant checker: determinism, error hygiene, "
            "and DNS semantics"
        ),
    )
    configure_parser(parser)
    return parser


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists() or args.write_baseline:
        return default
    return None


def _selected_rules(engine: LintEngine, analyzer: str) -> List[Any]:
    """Rule descriptors for reporting, per analyzer selection."""
    rules: List[Any] = []
    if analyzer in ("ast", "all"):
        rules.extend(engine.rules)
    if analyzer in ("flow", "all"):
        rules.extend(FLOW_RULES)
    return rules


def run(args: argparse.Namespace, out: IO[str]) -> int:
    """Execute a lint run described by parsed arguments."""
    engine = LintEngine()
    analyzer = getattr(args, "analyzer", "all")
    if args.list_rules:
        for rule in _selected_rules(engine, analyzer):
            print(
                f"{rule.rule_id}  [{rule.severity.value}]  {rule.description}",
                file=out,
            )
        return 0

    if getattr(args, "prune_baseline", False):
        target = (
            Path(args.baseline)
            if args.baseline is not None
            else Path(DEFAULT_BASELINE_NAME)
        )
        try:
            baseline = Baseline.load(target)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        pruned, dropped = baseline.prune()
        pruned.dump(target)
        for rule, path, shown in dropped:
            print(f"pruned: [{rule}] {path}: {shown!r}", file=out)
        print(
            f"baseline pruned: {target} "
            f"({len(dropped)} row(s) dropped, {len(pruned)} kept)",
            file=out,
        )
        return 0

    paths: List[Path] = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        shown = ", ".join(str(p) for p in missing)
        print(f"error: no such path(s): {shown}", file=out)
        return 2

    findings: List[Finding] = []
    if analyzer in ("ast", "all"):
        findings.extend(engine.lint_paths(paths))
    if analyzer in ("flow", "all"):
        findings.extend(analyze_flow(paths))
    findings.sort()
    baseline_path = _resolve_baseline_path(args)

    if args.write_baseline:
        target = baseline_path if baseline_path is not None else Path(
            DEFAULT_BASELINE_NAME
        )
        Baseline.from_findings(findings).dump(target)
        print(
            f"baseline written: {target} ({len(findings)} finding(s))",
            file=out,
        )
        return 0

    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
    else:
        baseline = Baseline()
    match = baseline.match(findings)

    if args.format == "json":
        print(render_json(match), file=out)
    elif args.format == "sarif":
        print(
            render_sarif(match, _selected_rules(engine, analyzer), _VERSION),
            file=out,
        )
    else:
        print(render_text(match), file=out)
    return 1 if match.new else 0


def main(
    argv: Optional[Sequence[str]] = None, out: Optional[IO[str]] = None
) -> int:
    args = build_parser().parse_args(argv)
    try:
        return run(args, out if out is not None else sys.stdout)
    except BrokenPipeError:
        # Report truncated by a closed pipe (e.g. `... | head`); the
        # findings already shown are all the reader asked for.
        return 1
