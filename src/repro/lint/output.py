"""Reporters: text, JSON, and SARIF 2.1.0.

SARIF is the interchange format GitHub code scanning and most editors
ingest; the emitted document carries every rule's metadata plus a
``baselineState`` per result so a viewer can distinguish ratcheted
findings from new ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .baseline import BaselineMatch
from .findings import Finding

__all__ = ["render_text", "render_json", "render_sarif", "FORMATS"]

FORMATS = ("text", "json", "sarif")

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(match: BaselineMatch) -> str:
    """Human-readable report, new findings first."""
    lines: List[str] = []
    for finding in match.new:
        lines.append(finding.render())
        lines.extend(_trace_lines(finding))
    for finding in match.baselined:
        lines.append(f"{finding.render()} (baselined)")
        lines.extend(_trace_lines(finding))
    for rule, path, snippet in match.stale:
        shown = snippet if len(snippet) <= 60 else snippet[:57] + "..."
        lines.append(
            f"stale baseline entry: [{rule}] {path}: {shown!r} no longer fires"
        )
    summary = (
        f"{len(match.new)} new finding(s), "
        f"{len(match.baselined)} baselined, "
        f"{len(match.stale)} stale baseline entr(y/ies)"
    )
    lines.append(summary)
    return "\n".join(lines)


def _trace_lines(finding: Finding) -> List[str]:
    """Indented source→sink hops for the text reporter."""
    return [
        f"    {index}. {hop.path}:{hop.line}:{hop.column} {hop.note}"
        for index, hop in enumerate(finding.trace, start=1)
    ]


def _finding_dict(finding: Finding, baselined: bool) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "rule": finding.rule_id,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "message": finding.message,
        "snippet": finding.snippet,
        "baselined": baselined,
    }
    if finding.trace:
        payload["trace"] = [
            {
                "path": hop.path,
                "line": hop.line,
                "column": hop.column,
                "note": hop.note,
            }
            for hop in finding.trace
        ]
    return payload


def render_json(match: BaselineMatch) -> str:
    """Machine-readable report mirroring the text reporter's content."""
    payload = {
        "findings": (
            [_finding_dict(f, baselined=False) for f in match.new]
            + [_finding_dict(f, baselined=True) for f in match.baselined]
        ),
        "stale_baseline": [
            {"rule": rule, "path": path, "snippet": snippet}
            for rule, path, snippet in match.stale
        ],
        "summary": {
            "new": len(match.new),
            "baselined": len(match.baselined),
            "stale": len(match.stale),
        },
    }
    return json.dumps(payload, indent=2)


def _physical_location(path: str, line: int, column: int) -> Dict[str, Any]:
    return {
        "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
        "region": {"startLine": line, "startColumn": column},
    }


def _sarif_result(finding: Finding, baselined: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": finding.severity.sarif_level,
        "message": {"text": finding.message},
        "baselineState": "unchanged" if baselined else "new",
        "locations": [
            {
                "physicalLocation": _physical_location(
                    finding.path, finding.line, finding.column
                )
            }
        ],
    }
    if finding.trace:
        # The interprocedural source→sink path: threadFlow locations in
        # hop order (what SARIF viewers step through), mirrored as
        # relatedLocations so flat renderers surface the hops too.
        hop_locations = [
            {
                "location": {
                    "physicalLocation": _physical_location(
                        hop.path, hop.line, hop.column
                    ),
                    "message": {"text": hop.note or "flow step"},
                }
            }
            for hop in finding.trace
        ]
        result["codeFlows"] = [
            {"threadFlows": [{"locations": hop_locations}]}
        ]
        result["relatedLocations"] = [
            {
                "physicalLocation": _physical_location(
                    hop.path, hop.line, hop.column
                ),
                "message": {"text": hop.note or "flow step"},
            }
            for hop in finding.trace
        ]
    return result


def render_sarif(
    match: BaselineMatch,
    rules: Sequence[Any],
    version: str,
    tool: str = "reprolint",
    information_uri: str = "https://github.com/example/repro",
) -> str:
    """A minimal-but-valid SARIF 2.1.0 document.

    ``rules`` is any sequence of objects with ``rule_id``,
    ``description`` and ``severity`` attributes — reprolint's AST rules
    and zonelint's smell descriptors both qualify, which is what lets
    the two analyzer families share one reporter.
    """
    driver_rules = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": rule.severity.sarif_level},
        }
        for rule in rules
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "version": version,
                        "informationUri": information_uri,
                        "rules": driver_rules,
                    }
                },
                "results": (
                    [_sarif_result(f, baselined=False) for f in match.new]
                    + [
                        _sarif_result(f, baselined=True)
                        for f in match.baselined
                    ]
                ),
            }
        ],
    }
    return json.dumps(document, indent=2)
