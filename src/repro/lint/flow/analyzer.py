"""flowlint driver: harvest → call graph → taint fixpoint → findings.

The whole package is parsed once (same sorted file walk as the AST
engine), every function is summarized, and two finding families come
out:

* dataflow findings (FLW001–FLW005) from the interprocedural taint
  phase, each carrying a source→sink trace;
* concurrency findings (FLW101–FLW103) read directly off the summaries
  and the call graph: generator tasks writing shared state across
  yield points, constant-seeded RNG streams reachable from the shard
  worker, and writes to frozen caches.

Inline ``# reprolint: disable=...`` comments are honored at the line a
finding is anchored on (the sink for dataflow findings), with exactly
the engine's syntax and semantics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import _collect_suppressions, _display_path, iter_python_files
from ..findings import Finding, TraceHop
from .callgraph import CallGraph
from .harvest import harvest_module, module_name_for
from .model import FunctionSummary, ModuleInfo
from .rules import RULES_BY_ID, WORKER_ROOTS
from .taint import TaintAnalyzer

__all__ = ["FlowAnalyzer", "analyze_paths", "analyze_sources"]


class FlowAnalyzer:
    """One whole-package flow analysis over (path, source) pairs."""

    def __init__(self, sources: Sequence[Tuple[str, str]]) -> None:
        # Sorted for deterministic summary/finding order regardless of
        # the caller's enumeration order.
        self.sources: List[Tuple[str, str]] = sorted(sources)
        self.modules: List[ModuleInfo] = []
        self.summaries: List[FunctionSummary] = []
        self.suppressions: Dict[str, Dict[int, Set[str]]] = {}
        self.graph: Optional[CallGraph] = None

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        for path, source in self.sources:
            modname = module_name_for(path)
            if modname is None:
                continue
            try:
                info, summaries = harvest_module(
                    path,
                    modname,
                    source,
                    is_package=path.endswith("__init__.py"),
                )
            except SyntaxError:
                # The AST engine already reports PARSE findings; the
                # flow phase just leaves broken files out of the graph.
                continue
            self.modules.append(info)
            self.summaries.extend(summaries)
            self.suppressions[path] = _collect_suppressions(
                source.splitlines()
            )
        self.graph = CallGraph(self.modules, self.summaries)
        findings = TaintAnalyzer(self.graph).run()
        findings.extend(self._concurrency_findings())
        findings = [f for f in findings if not self._suppressed(f)]
        findings.sort()
        return findings

    # ------------------------------------------------------------------
    def _concurrency_findings(self) -> List[Finding]:
        assert self.graph is not None
        findings: List[Finding] = []
        reachable = self.graph.reachable_from(WORKER_ROOTS)
        for key in sorted(self.graph.summaries):
            summary = self.graph.summaries[key]
            for write in summary.shared_writes:
                if not write.after_yield:
                    continue
                rule = RULES_BY_ID["FLW101"]
                findings.append(
                    Finding(
                        path=write.site.path,
                        line=write.site.line,
                        column=write.site.column,
                        rule_id=rule.rule_id,
                        severity=rule.severity,
                        message=(
                            f"generator task {summary.qualname}() writes "
                            f"shared state '{write.target}' after a yield "
                            "point; another task can interleave"
                        ),
                        snippet=write.site.text,
                    )
                )
            if key in reachable:
                for site in summary.constant_seeds:
                    rule = RULES_BY_ID["FLW102"]
                    findings.append(
                        Finding(
                            path=site.path,
                            line=site.line,
                            column=site.column,
                            rule_id=rule.rule_id,
                            severity=rule.severity,
                            message=(
                                f"constant-seeded random.Random() in "
                                f"{summary.qualname}(), reachable from the "
                                "shard worker; every shard draws the same "
                                "stream — derive it from per-shard material"
                            ),
                            snippet=site.text,
                        )
                    )
            for write in summary.frozen_writes:
                rule = RULES_BY_ID["FLW103"]
                findings.append(
                    Finding(
                        path=write.site.path,
                        line=write.site.line,
                        column=write.site.column,
                        rule_id=rule.rule_id,
                        severity=rule.severity,
                        message=(
                            f"{write.receiver}.{write.method}() after "
                            f"{write.receiver}.freeze() (line "
                            f"{write.freeze_line}) is a silent no-op"
                        ),
                        snippet=write.site.text,
                        trace=(
                            TraceHop(
                                path=write.site.path,
                                line=write.freeze_line,
                                column=1,
                                note=f"{write.receiver} frozen here",
                            ),
                            TraceHop(
                                path=write.site.path,
                                line=write.site.line,
                                column=write.site.column,
                                note=f"write via {write.method}() dropped",
                            ),
                        ),
                    )
                )
        return findings

    def _suppressed(self, finding: Finding) -> bool:
        disabled = self.suppressions.get(finding.path, {}).get(
            finding.line, set()
        )
        return "all" in disabled or finding.rule_id in disabled


def analyze_sources(sources: Sequence[Tuple[str, str]]) -> List[Finding]:
    """Analyze in-memory (display path, source) pairs (test harness)."""
    return FlowAnalyzer(sources).run()


def analyze_paths(
    paths: Sequence[Path], root: Optional[Path] = None
) -> List[Finding]:
    """Analyze files and directory trees; returns sorted findings."""
    sources: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        display = _display_path(path, root)
        try:
            sources.append((display, path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError):
            continue  # the AST engine reports IO findings
    return analyze_sources(sources)
