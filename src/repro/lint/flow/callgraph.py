"""Module-level call graph over the harvested summaries.

Callee *hints* recorded by the harvester are dotted names resolved
through each module's import map (``repro.core.shard.run_campaign``,
``repro.dns.cache.ZoneCutCache.put``, ``self``-calls pre-qualified with
their enclosing class).  This module maps hints onto function keys
(``module:qualname``) and exposes the edge set plus worker-root
reachability for the concurrency rules.

Resolution strategy, most to least precise:

1. longest module-prefix match: split the hint at every known module
   boundary and look for the remainder among that module's qualnames
   (``Class.method`` and plain functions), trying ``Class`` →
   ``Class.__init__`` for constructor calls;
2. package re-export fallback: a hint whose tail ``Class.method`` (or
   unique top-level name) matches exactly one summary package-wide is
   linked to it — this is what resolves names imported through
   ``__init__`` re-exports;
3. otherwise unresolved (``None``) — the taint phase treats such calls
   as conservative pass-through of receiver and arguments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .model import FunctionSummary, ModuleInfo

__all__ = ["CallGraph"]


class CallGraph:
    """Summary index + resolved edges for one analyzed package."""

    def __init__(
        self,
        modules: Sequence[ModuleInfo],
        summaries: Sequence[FunctionSummary],
    ) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.modname: m for m in modules}
        self.summaries: Dict[str, FunctionSummary] = {
            s.key: s for s in summaries
        }
        # Tail indexes for the re-export fallback.
        self._by_qualname: Dict[str, List[str]] = {}
        self._by_name: Dict[str, List[str]] = {}
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            self._by_qualname.setdefault(summary.qualname, []).append(key)
            self._by_name.setdefault(summary.name, []).append(key)
        self._hint_cache: Dict[str, Optional[str]] = {}
        self.edges: Dict[str, Tuple[str, ...]] = {}
        for key in sorted(self.summaries):
            resolved = []
            for record in self.summaries[key].calls:
                target = self.resolve_hint(record.callee)
                if target is not None:
                    resolved.append(target)
            self.edges[key] = tuple(dict.fromkeys(resolved))

    # ------------------------------------------------------------------
    def resolve_hint(self, hint: Optional[str]) -> Optional[str]:
        """Map a dotted callee hint onto a function key, if possible."""
        if hint is None:
            return None
        if hint in self._hint_cache:
            return self._hint_cache[hint]
        self._hint_cache[hint] = None  # cycle/err guard while resolving
        result = self._resolve(hint)
        self._hint_cache[hint] = result
        return result

    def _resolve(self, hint: str) -> Optional[str]:
        # 1. Longest module-prefix match.
        parts = hint.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            modname = ".".join(parts[:cut])
            if modname not in self.modules:
                continue
            remainder = ".".join(parts[cut:])
            found = self._lookup_in_module(modname, remainder)
            if found is not None:
                return found
            break  # the module exists; a miss means a re-export or alias
        # 2. Package-wide unique-tail fallback.
        if len(parts) >= 2:
            tail = ".".join(parts[-2:])
            keys = self._by_qualname.get(tail, [])
            if len(keys) == 1:
                return keys[0]
        name = parts[-1]
        constructors = self._by_qualname.get(f"{name}.__init__", [])
        if name[:1].isupper() and len(constructors) == 1:
            return constructors[0]
        keys = self._by_qualname.get(name, [])
        if len(keys) == 1:
            return keys[0]
        return None

    def _lookup_in_module(
        self, modname: str, remainder: str
    ) -> Optional[str]:
        direct = f"{modname}:{remainder}"
        if direct in self.summaries:
            return direct
        # Constructor call: Class → Class.__init__.
        constructor = f"{modname}:{remainder}.__init__"
        if constructor in self.summaries:
            return constructor
        module = self.modules.get(modname)
        if module is not None and "." not in remainder:
            # Known class without an own __init__: resolvable as a
            # class, but there is no function body to enter.
            if remainder in module.classes:
                return None
        return None

    # ------------------------------------------------------------------
    def callees_of(self, key: str) -> Tuple[str, ...]:
        return self.edges.get(key, ())

    def reachable_from(self, root_names: Iterable[str]) -> Set[str]:
        """All function keys reachable from functions with these bare
        names (breadth-first over resolved edges)."""
        roots = sorted(
            key
            for key, summary in self.summaries.items()
            if summary.name in set(root_names)
        )
        seen: Set[str] = set(roots)
        frontier: List[str] = list(roots)
        while frontier:
            current = frontier.pop(0)
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen
