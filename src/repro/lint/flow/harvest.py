"""Per-module harvesting: one AST walk per file, one summary per
function.

The local pass runs a small abstract interpreter over each function
body: names map to sets of taint atoms, statements are visited in
source order (a bounded number of passes reaches loop-carried
assignments), and every call is either recognized as a source, a sink,
an order-killer, a materialization point, or recorded as a
:class:`~repro.lint.flow.model.CallRecord` for the interprocedural
phase.  Method receivers are typed by lightweight local inference
(constructor assignments and resolvable parameter annotations) so
``cache.put(...)`` can be linked to the class that defines ``put``.

Known false-negative classes (documented in DESIGN.md §12): closures
and nested functions are summarized but not linked to their enclosing
frame; containers are taint-opaque per element (a tainted value stored
in a list taints the list, not index-precisely); dict iteration is
treated as deterministic (insertion-ordered since Python 3.7).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .model import (
    TAINT_ENV,
    TAINT_ORDER,
    TAINT_RNG,
    TAINT_SETLIKE,
    Atom,
    CallAtom,
    CallRecord,
    FrozenWrite,
    FunctionSummary,
    ModuleInfo,
    ParamAtom,
    SharedWrite,
    SinkHit,
    Site,
    SourceAtom,
)
from .rules import (
    ENV_MAPPING,
    FREEZABLE_METHODS,
    OBJECT_SOURCES,
    ORDER_KILLERS,
    RNG_PREFIXES,
    RNG_SEEDED_CONSTRUCTOR,
    SINK_CALLS,
    SINK_TYPE_METHODS,
    SOURCE_KINDS,
)

__all__ = ["module_name_for", "harvest_module"]

_LOCAL_PASSES = 3  # bounded fixpoint for loop-carried assignments

# Builtins whose result renders their argument's iteration order into
# an ordered artifact (a string or sequence).
_MATERIALIZERS = frozenset({"list", "tuple", "str", "repr", "format"})


def module_name_for(path: str) -> Optional[str]:
    """Absolute dotted module name from a display path.

    ``src/repro/core/shard.py`` → ``repro.core.shard``;
    ``src/repro/core/__init__.py`` → ``repro.core``.  Returns ``None``
    for files outside a ``repro`` package root (fixture trees under
    tests get their own root detection from the top-most directory that
    contains an ``__init__``-free parent — we simply use the first path
    component in that case).
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def _absolutize_imports(
    raw: Dict[str, str], modname: str, is_package: bool
) -> Dict[str, str]:
    """Rewrite relative import targets as absolute dotted names."""
    resolved: Dict[str, str] = {}
    for local, target in raw.items():
        if not target.startswith("."):
            resolved[local] = target
            continue
        level = len(target) - len(target.lstrip("."))
        remainder = target[level:]
        parts = modname.split(".")
        # From a package's __init__, one dot names the package itself.
        climb = level - 1 if is_package else level
        if climb >= len(parts):
            continue  # escapes the analyzed root; unresolvable
        base = parts[: len(parts) - climb]
        absolute = ".".join(base + ([remainder] if remainder else []))
        resolved[local] = absolute
    return resolved


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return ".".join(parts)


class _ModuleHarvester:
    """Harvests every function/method summary of one module."""

    def __init__(
        self,
        path: str,
        modname: str,
        tree: ast.Module,
        lines: Sequence[str],
        raw_imports: Dict[str, str],
        is_package: bool,
    ) -> None:
        self.path = path
        self.modname = modname
        self.lines = tuple(lines)
        self.imports = _absolutize_imports(raw_imports, modname, is_package)
        self.tree = tree
        self.summaries: List[FunctionSummary] = []
        self.classes: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    def resolve(self, node: ast.expr) -> Optional[str]:
        """Import-qualified dotted name of an expression, or None."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        mapped = self.imports.get(head)
        if mapped is None:
            return dotted
        return f"{mapped}.{rest}" if rest else mapped

    def site(self, node: ast.AST) -> Site:
        lineno = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        text = ""
        if 1 <= lineno <= len(self.lines):
            text = self.lines[lineno - 1].strip()
        return Site(self.path, lineno, column, text)

    # ------------------------------------------------------------------
    def run(self) -> Tuple[List[FunctionSummary], Dict[str, List[str]]]:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._harvest_function(node, qualprefix="", classname=None)
            elif isinstance(node, ast.ClassDef):
                methods = [
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                self.classes[node.name] = methods
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._harvest_function(
                            item,
                            qualprefix=f"{node.name}.",
                            classname=node.name,
                        )
        return self.summaries, self.classes

    def _harvest_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        qualprefix: str,
        classname: Optional[str],
    ) -> None:
        qualname = f"{qualprefix}{node.name}"
        summary = FunctionSummary(
            key=f"{self.modname}:{qualname}",
            module=self.modname,
            path=self.path,
            qualname=qualname,
            lineno=node.lineno,
        )
        _FunctionHarvester(self, summary, node, classname).run()
        self.summaries.append(summary)
        # Nested defs get their own (unlinked) summaries.
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = FunctionSummary(
                    key=f"{self.modname}:{qualname}.<locals>.{inner.name}",
                    module=self.modname,
                    path=self.path,
                    qualname=f"{qualname}.<locals>.{inner.name}",
                    lineno=inner.lineno,
                )
                _FunctionHarvester(self, nested, inner, classname).run()
                self.summaries.append(nested)


class _FunctionHarvester:
    """The local abstract interpreter for one function body."""

    def __init__(
        self,
        module: _ModuleHarvester,
        summary: FunctionSummary,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        classname: Optional[str],
    ) -> None:
        self.module = module
        self.summary = summary
        self.node = node
        self.classname = classname
        args = node.args
        self.params: List[str] = [
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        summary.params = list(self.params)
        self.param_index = {name: i for i, name in enumerate(self.params)}
        self.taint: Dict[str, Set[Atom]] = {}
        self.types: Dict[str, str] = {}
        self.shared_names: Set[str] = set()  # global/nonlocal declarations
        self.freeze_lines: Dict[str, int] = {}
        self._seen_sinks: Set[Tuple[int, int, str]] = set()
        self._seen_calls: Set[Tuple[int, int]] = set()
        self._yield_lines: List[int] = []
        # Resolvable parameter annotations seed the type environment.
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                self._note_annotation(arg.arg, arg.annotation)

    def _note_annotation(self, name: str, annotation: ast.expr) -> None:
        target = annotation
        # Unwrap Optional[X] / "X" string annotations one level.
        if isinstance(target, ast.Subscript):
            resolved = self.module.resolve(target.value)
            if resolved and resolved.rpartition(".")[2] in (
                "Optional",
                "Final",
            ):
                target = (
                    target.slice.value  # type: ignore[attr-defined]
                    if isinstance(target.slice, ast.Index)  # pragma: no cover
                    else target.slice
                )
        if isinstance(target, ast.Constant) and isinstance(target.value, str):
            self.types[name] = target.value
            return
        if isinstance(target, (ast.Name, ast.Attribute)):
            resolved = self.module.resolve(target)
            if resolved is not None:
                self.types[name] = resolved

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._yield_lines = sorted(
            inner.lineno
            for inner in self._own_nodes()
            if isinstance(inner, (ast.Yield, ast.YieldFrom))
        )
        self.summary.is_generator = bool(self._yield_lines)
        for _ in range(_LOCAL_PASSES):
            before = {name: set(atoms) for name, atoms in self.taint.items()}
            # Records are rebuilt from scratch every pass so the final
            # (converged) pass — the one that saw loop-carried taint —
            # is the one that stands, without duplicates.
            self.summary.returns.clear()
            self.summary.sink_hits.clear()
            self.summary.calls.clear()
            self.summary.shared_writes.clear()
            self.summary.frozen_writes.clear()
            self.summary.constant_seeds.clear()
            self._seen_sinks.clear()
            self._seen_calls.clear()
            self.freeze_lines.clear()
            for statement in self.node.body:
                self._visit_stmt(statement)
            if before == self.taint:
                break

    def _own_nodes(self):
        """All nodes of this function body, skipping nested defs."""
        stack: List[ast.AST] = list(self.node.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _after_yield(self, node: ast.AST) -> bool:
        """Can a yield point run before this node executes?

        True when a yield appears earlier in source order, or when the
        node sits inside a loop that also contains a yield (the second
        iteration runs the write after the first iteration's yield).
        """
        lineno = getattr(node, "lineno", 0)
        if any(y < lineno for y in self._yield_lines):
            return True
        for loop in self._own_nodes():
            if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
                continue
            span_start = loop.lineno
            span_end = max(
                (getattr(n, "lineno", span_start) for n in ast.walk(loop)),
                default=span_start,
            )
            if span_start <= lineno <= span_end and any(
                span_start <= y <= span_end for y in self._yield_lines
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            self.shared_names.update(node.names)
            return
        if isinstance(node, ast.Assign):
            atoms = self._eval(node.value)
            for target in node.targets:
                self._assign(target, atoms, node.value)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                atoms = self._eval(node.value)
                self._assign(node.target, atoms, node.value)
            if isinstance(node.target, ast.Name) and node.annotation is not None:
                self._note_annotation(node.target.id, node.annotation)
            return
        if isinstance(node, ast.AugAssign):
            atoms = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                existing = self.taint.get(node.target.id, set())
                self.taint[node.target.id] = existing | atoms
                if node.target.id in self.shared_names:
                    self._record_shared_write(node.target.id, node)
            elif self._is_self_attribute(node.target):
                self._record_shared_write(_dotted(node.target) or "self.?", node)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.summary.returns.extend(sorted_atoms(self._eval(node.value)))
            return
        if isinstance(node, ast.Expr):
            self._eval(node.value)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_atoms = self._eval(node.iter)
            element = set()
            for atom in iter_atoms:
                if isinstance(atom, SourceAtom) and atom.kind == TAINT_SETLIKE:
                    # Iterating a set in a for loop exposes hash order
                    # to whatever the body builds.
                    element.add(
                        SourceAtom(
                            TAINT_ORDER,
                            self.module.site(node.iter),
                            "iterates a set in hash order",
                        )
                    )
                else:
                    element.add(atom)
            self._assign(node.target, element, node.iter)
            for statement in (*node.body, *node.orelse):
                self._visit_stmt(statement)
            return
        if isinstance(node, ast.While):
            self._eval(node.test)
            for statement in (*node.body, *node.orelse):
                self._visit_stmt(statement)
            return
        if isinstance(node, ast.If):
            self._eval(node.test)
            for statement in (*node.body, *node.orelse):
                self._visit_stmt(statement)
            return
        if isinstance(node, ast.Try):
            for statement in node.body:
                self._visit_stmt(statement)
            for handler in node.handlers:
                for statement in handler.body:
                    self._visit_stmt(statement)
            for statement in (*node.orelse, *node.finalbody):
                self._visit_stmt(statement)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                atoms = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, atoms, item.context_expr)
            for statement in node.body:
                self._visit_stmt(statement)
            return
        if isinstance(node, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return
        # pass/break/continue/import — nothing to do.

    def _assign(
        self, target: ast.expr, atoms: Set[Atom], value: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            self.taint[target.id] = set(atoms)
            if target.id in self.shared_names:
                self._record_shared_write(target.id, target)
            # Constructor-based type inference: x = pkg.Class(...)
            if isinstance(value, ast.Call):
                resolved = self.module.resolve(value.func)
                if resolved is not None:
                    tail = resolved.rpartition(".")[2]
                    if tail[:1].isupper():
                        self.types[target.id] = resolved
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, atoms, value)
            return
        if self._is_self_attribute(target):
            self._record_shared_write(_dotted(target) or "self.?", target)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if self._is_self_attribute(base) or (
                isinstance(base, ast.Name) and base.id in self.shared_names
            ):
                self._record_shared_write(
                    (_dotted(base) or "?") + "[...]", target
                )

    def _is_self_attribute(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        )

    def _record_shared_write(self, target: str, node: ast.AST) -> None:
        if not self.summary.is_generator:
            return
        self.summary.shared_writes.append(
            SharedWrite(
                target=target,
                site=self.module.site(node),
                after_yield=self._after_yield(node),
            )
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, node: ast.expr) -> Set[Atom]:
        if isinstance(node, ast.Name):
            atoms: Set[Atom] = set(self.taint.get(node.id, ()))
            if node.id in self.param_index:
                atoms.add(ParamAtom(self.param_index[node.id]))
            return atoms
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            resolved = self.module.resolve(node)
            if resolved == ENV_MAPPING:
                return {
                    SourceAtom(
                        TAINT_ENV, self.module.site(node), "os.environ read"
                    )
                }
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            if self.module.resolve(node.value) == ENV_MAPPING:
                return {
                    SourceAtom(
                        TAINT_ENV,
                        self.module.site(node),
                        "os.environ[...] read",
                    )
                }
            return self._eval(node.value) | self._eval_optional(node.slice)
        if isinstance(node, ast.Set):
            atoms = (
                set().union(*(self._eval(e) for e in node.elts))
                if node.elts
                else set()
            )
            atoms.add(
                SourceAtom(
                    TAINT_SETLIKE, self.module.site(node), "set literal"
                )
            )
            return atoms
        if isinstance(node, ast.SetComp):
            atoms = self._eval_comprehension(node)
            atoms.add(
                SourceAtom(
                    TAINT_SETLIKE, self.module.site(node), "set comprehension"
                )
            )
            return atoms
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            atoms = self._eval_comprehension(node)
            if isinstance(node, ast.ListComp):
                atoms = self._materialize(atoms, node)
            return atoms
        if isinstance(node, ast.DictComp):
            return self._eval(node.key) | self._eval(node.value) | set().union(
                *(self._eval(gen.iter) for gen in node.generators)
            )
        if isinstance(node, (ast.List, ast.Tuple)):
            return (
                set().union(*(self._eval(e) for e in node.elts))
                if node.elts
                else set()
            )
        if isinstance(node, ast.Dict):
            parts = [self._eval(v) for v in node.values if v is not None]
            parts += [self._eval(k) for k in node.keys if k is not None]
            return set().union(*parts) if parts else set()
        if isinstance(node, ast.JoinedStr):
            atoms = set().union(
                *(self._eval(v) for v in node.values)
            ) if node.values else set()
            return self._materialize(atoms, node)
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.BoolOp):
            return set().union(*(self._eval(v) for v in node.values))
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            return set().union(
                self._eval(node.left), *(self._eval(c) for c in node.comparators)
            )
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._eval(node.value)
            return set()  # values sent back in are scheduler-mediated
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, ast.NamedExpr):
            atoms = self._eval(node.value)
            self._assign(node.target, atoms, node.value)
            return atoms
        return set()

    def _eval_optional(self, node: ast.AST) -> Set[Atom]:
        return self._eval(node) if isinstance(node, ast.expr) else set()

    def _eval_comprehension(self, node) -> Set[Atom]:
        atoms: Set[Atom] = set()
        for gen in node.generators:
            iter_atoms = self._eval(gen.iter)
            element: Set[Atom] = set()
            for atom in iter_atoms:
                if isinstance(atom, SourceAtom) and atom.kind == TAINT_SETLIKE:
                    element.add(
                        SourceAtom(
                            TAINT_ORDER,
                            self.module.site(gen.iter),
                            "iterates a set in hash order",
                        )
                    )
                else:
                    element.add(atom)
            self._assign(gen.target, element, gen.iter)
            atoms |= element
            for condition in gen.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            atoms |= self._eval(node.key) | self._eval(node.value)
        else:
            atoms |= self._eval(node.elt)
        return atoms

    def _materialize(self, atoms: Set[Atom], node: ast.AST) -> Set[Atom]:
        """Convert latent set-likeness into concrete order taint."""
        result: Set[Atom] = set()
        for atom in atoms:
            if isinstance(atom, SourceAtom) and atom.kind == TAINT_SETLIKE:
                result.add(
                    SourceAtom(
                        TAINT_ORDER,
                        self.module.site(node),
                        "materializes set iteration order",
                    )
                )
            else:
                result.add(atom)
        return result

    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Set[Atom]:
        site = self.module.site(node)
        arg_sets = [self._eval(a) for a in node.args]
        kw_sets = [self._eval(kw.value) for kw in node.keywords]
        all_args: Set[Atom] = (
            set().union(*arg_sets, *kw_sets) if (arg_sets or kw_sets) else set()
        )
        resolved = self.module.resolve(node.func)
        bare = resolved.rpartition(".")[2] if resolved else None

        # --- sources --------------------------------------------------
        if resolved is not None:
            if resolved in SOURCE_KINDS and (
                resolved not in OBJECT_SOURCES or isinstance(node.func, ast.Name)
            ):
                kind = SOURCE_KINDS[resolved]
                atoms = {SourceAtom(kind, site, f"{resolved}()")}
                # id()/hash() of an argument also keeps the argument's
                # own taint irrelevant — identity is the whole story.
                return atoms
            if resolved == RNG_SEEDED_CONSTRUCTOR:
                if not node.args and not node.keywords:
                    return {
                        SourceAtom(
                            TAINT_RNG, site, "random.Random() without a seed"
                        )
                    }
                self._note_constant_seed(node, site)
                return all_args  # seeded stream: carries the seed's taint
            if resolved.startswith(RNG_PREFIXES):
                return {SourceAtom(TAINT_RNG, site, f"{resolved}()")}

        # --- order-killers and materializers --------------------------
        if isinstance(node.func, ast.Name) and node.func.id in ORDER_KILLERS:
            return {
                atom
                for atom in all_args
                if not (
                    isinstance(atom, SourceAtom)
                    and atom.kind == TAINT_SETLIKE
                )
            }
        if isinstance(node.func, ast.Name) and node.func.id in _MATERIALIZERS:
            return self._materialize(all_args, node)
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            atoms = set(all_args)
            atoms.add(SourceAtom(TAINT_SETLIKE, site, f"{node.func.id}(...)"))
            return atoms

        # --- sinks ----------------------------------------------------
        receiver_atoms: Set[Atom] = set()
        receiver_type: Optional[str] = None
        if isinstance(node.func, ast.Attribute):
            receiver_atoms = self._eval(node.func.value)
            if isinstance(node.func.value, ast.Name):
                receiver_type = self.types.get(node.func.value.id)
        self._check_sinks(node, resolved, receiver_type, all_args, site)
        self._check_freeze(node)

        # --- call record for the interprocedural phase ----------------
        callee = self._callee_hint(node, resolved, receiver_type)
        has_receiver = isinstance(node.func, ast.Attribute)
        positional = ([receiver_atoms] if has_receiver else []) + arg_sets + kw_sets
        args_tuple = tuple(frozenset(atoms) for atoms in positional)
        key = (site.line, site.column)
        if key not in self._seen_calls:
            self._seen_calls.add(key)
            self.summary.calls.append(
                CallRecord(
                    callee=callee,
                    site=site,
                    args=args_tuple,
                    has_receiver=has_receiver,
                )
            )
        return {
            CallAtom(
                callee=callee,
                site=site,
                args=args_tuple,
                has_receiver=has_receiver,
            )
        }

    def _note_constant_seed(self, node: ast.Call, site: Site) -> None:
        seeds = [a for a in node.args] + [kw.value for kw in node.keywords]
        if len(seeds) == 1 and isinstance(seeds[0], ast.Constant) and isinstance(
            seeds[0].value, (int, float)
        ):
            if site not in self.summary.constant_seeds:
                self.summary.constant_seeds.append(site)

    def _check_sinks(
        self,
        node: ast.Call,
        resolved: Optional[str],
        receiver_type: Optional[str],
        all_args: Set[Atom],
        site: Site,
    ) -> None:
        label: Optional[str] = None
        if resolved is not None:
            for suffix, sink_label in SINK_CALLS.items():
                if resolved == suffix or resolved.endswith("." + suffix):
                    label = sink_label
                    break
        if label is None and receiver_type is not None and isinstance(
            node.func, ast.Attribute
        ):
            for type_prefix, methods in SINK_TYPE_METHODS.items():
                if receiver_type.startswith(type_prefix):
                    label = methods.get(node.func.attr)
                    if label is not None:
                        break
        if label is None or not all_args:
            return
        key = (site.line, site.column, label)
        if key in self._seen_sinks:
            return
        self._seen_sinks.add(key)
        self.summary.sink_hits.append(
            SinkHit(label=label, site=site, atoms=frozenset(all_args))
        )

    def _check_freeze(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        receiver = _dotted(node.func.value)
        if receiver is None:
            return
        if node.func.attr == "freeze":
            self.freeze_lines.setdefault(receiver, node.lineno)
            return
        if node.func.attr in FREEZABLE_METHODS:
            frozen_at = self.freeze_lines.get(receiver)
            if frozen_at is not None and node.lineno > frozen_at:
                self.summary.frozen_writes.append(
                    FrozenWrite(
                        receiver=receiver,
                        method=node.func.attr,
                        site=self.module.site(node),
                        freeze_line=frozen_at,
                    )
                )

    def _callee_hint(
        self,
        node: ast.Call,
        resolved: Optional[str],
        receiver_type: Optional[str],
    ) -> Optional[str]:
        """A dotted-name hint the call graph can map to a function key.

        ``self.method()`` resolves against the enclosing class here
        (the one place the class is statically known); typed receivers
        produce ``Type.method``; plain resolvable names pass through.
        """
        if isinstance(node.func, ast.Attribute):
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
                and self.classname is not None
            ):
                return (
                    f"{self.module.modname}.{self.classname}.{node.func.attr}"
                )
            if receiver_type is not None:
                return f"{receiver_type}.{node.func.attr}"
        return resolved


def sorted_atoms(atoms: Set[Atom]) -> List[Atom]:
    """Deterministic atom ordering (source sites first, then params,
    then calls by site)."""

    def sort_key(atom: Atom):
        if isinstance(atom, SourceAtom):
            return (0, atom.kind, atom.site, atom.detail)
        if isinstance(atom, ParamAtom):
            return (1, atom.index, Site("", 0, 0), "")
        return (2, "", atom.site, atom.callee or "")

    return sorted(atoms, key=sort_key)


def harvest_module(
    path: str,
    modname: str,
    source: str,
    is_package: bool,
) -> Tuple[ModuleInfo, List[FunctionSummary]]:
    """Parse one module and summarize every function in it.

    Raises :class:`SyntaxError` upward — the analyzer reports it the
    same way the AST engine does.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    raw_imports = _collect_imports(tree)
    harvester = _ModuleHarvester(
        path, modname, tree, lines, raw_imports, is_package
    )
    summaries, classes = harvester.run()
    info = ModuleInfo(
        path=path,
        modname=modname,
        imports=harvester.imports,
        lines=tuple(lines),
        classes=classes,
    )
    return info, summaries


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Local alias → dotted origin (relative targets keep their dots)."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = (
                    alias.name if alias.asname else alias.name.partition(".")[0]
                )
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                if not module:
                    imports[local] = alias.name
                elif module.endswith("."):
                    # `from . import x` / `from .. import x`: the level
                    # dots are the whole module part — appending with a
                    # separator dot would inflate the relative level.
                    imports[local] = module + alias.name
                else:
                    imports[local] = f"{module}.{alias.name}"
    return imports
