"""Value types for the interprocedural flow analyzer.

The analysis is summary-based: each function is reduced to a
:class:`FunctionSummary` of symbolic *taint atoms* (where
nondeterminism enters, which parameters pass through, which calls it
makes, which sinks it touches), and the interprocedural phase
(:mod:`repro.lint.flow.taint`) resolves the atoms against the whole
package's call graph without ever re-reading an AST.

Atoms form a small language:

:class:`SourceAtom`
    Concrete nondeterminism entered here (wall clock, RNG, env read,
    object identity, set-iteration order, or the latent ``setlike``
    property that becomes order taint on materialization).
:class:`ParamAtom`
    The value carries whatever the function's ``index``-th parameter
    carried — the hook the caller-side instantiation hangs off.
:class:`CallAtom`
    The value is (derived from) the result of a call; resolved callees
    expand through their summaries, unresolved ones conservatively pass
    their receiver and arguments through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..findings import Severity

__all__ = [
    "TAINT_CLOCK",
    "TAINT_RNG",
    "TAINT_ENV",
    "TAINT_OBJECT",
    "TAINT_ORDER",
    "TAINT_SETLIKE",
    "CONCRETE_TAINTS",
    "Site",
    "SourceAtom",
    "ParamAtom",
    "CallAtom",
    "Atom",
    "AtomSet",
    "SinkHit",
    "CallRecord",
    "SharedWrite",
    "FrozenWrite",
    "FunctionSummary",
    "ModuleInfo",
    "FlowRule",
]

# Concrete taint kinds — each maps 1:1 to an FLW rule in rules.py.
TAINT_CLOCK = "clock"
TAINT_RNG = "rng"
TAINT_ENV = "env"
TAINT_OBJECT = "object-identity"
TAINT_ORDER = "iteration-order"
# Latent property: the value is an unordered set-like container.  It
# only becomes TAINT_ORDER when an ordered sequence is materialized
# from it (list()/tuple()/join/comprehension) without sorted().
TAINT_SETLIKE = "setlike"

CONCRETE_TAINTS = (
    TAINT_CLOCK,
    TAINT_RNG,
    TAINT_ENV,
    TAINT_OBJECT,
    TAINT_ORDER,
)


@dataclass(frozen=True, order=True)
class Site:
    """A source location plus the stripped line text (for snippets)."""

    path: str
    line: int
    column: int
    text: str = ""


@dataclass(frozen=True, order=True)
class SourceAtom:
    """Concrete nondeterminism entering at ``site``."""

    kind: str
    site: Site
    detail: str


@dataclass(frozen=True, order=True)
class ParamAtom:
    """Taint of the enclosing function's ``index``-th parameter."""

    index: int


@dataclass(frozen=True)
class CallAtom:
    """Taint of a call result, to be expanded interprocedurally.

    ``callee`` is a function key (``module:qualname``) when the call
    graph resolved the target, else ``None``; unresolved calls are
    treated as pass-through of receiver + arguments (``str(x)`` keeps
    ``x``'s taint).  ``args`` holds the atom set of every argument in
    positional order, receiver (for method calls) first when present.
    """

    callee: Optional[str]
    site: Site
    args: Tuple[FrozenSet["Atom"], ...] = ()
    # True when the call went through an attribute receiver, so
    # ``args[0]`` is the receiver and lines up with a method's ``self``.
    has_receiver: bool = False


Atom = Union[SourceAtom, ParamAtom, CallAtom]
AtomSet = FrozenSet[Atom]


@dataclass(frozen=True)
class SinkHit:
    """A determinism sink touched inside one function."""

    label: str  # e.g. "digest input", "dataset merge admission"
    site: Site
    atoms: AtomSet  # what flows into the sink


@dataclass(frozen=True)
class CallRecord:
    """One call site, for call-graph edges and arg-to-param flows."""

    callee: Optional[str]  # function key, or None when unresolved
    site: Site
    args: Tuple[AtomSet, ...]
    has_receiver: bool = False  # args[0] is the receiver when True


@dataclass(frozen=True)
class SharedWrite:
    """A write to state visible outside the current task frame."""

    target: str  # e.g. "self.counter" or global name
    site: Site
    after_yield: bool  # a yield point can run before this write


@dataclass(frozen=True)
class FrozenWrite:
    """A mutation of a cache after ``freeze()`` on the same receiver."""

    receiver: str
    method: str
    site: Site
    freeze_line: int


@dataclass
class FunctionSummary:
    """Everything the interprocedural phase needs about one function."""

    key: str  # "module:qualname"
    module: str
    path: str
    qualname: str
    lineno: int
    params: List[str] = field(default_factory=list)
    returns: List[Atom] = field(default_factory=list)
    sink_hits: List[SinkHit] = field(default_factory=list)
    calls: List[CallRecord] = field(default_factory=list)
    is_generator: bool = False
    shared_writes: List[SharedWrite] = field(default_factory=list)
    frozen_writes: List[FrozenWrite] = field(default_factory=list)
    constant_seeds: List[Site] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Bare function name (last qualname component)."""
        return self.qualname.rpartition(".")[2]


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed package."""

    path: str  # display path (posix, root-relative)
    modname: str  # absolute dotted module name, e.g. "repro.core.shard"
    imports: Dict[str, str] = field(default_factory=dict)  # absolutized
    lines: Tuple[str, ...] = ()
    classes: Dict[str, List[str]] = field(default_factory=dict)
    # classes: bare class name -> method names (for receiver inference)


@dataclass(frozen=True)
class FlowRule:
    """Descriptor for one FLW rule (SARIF metadata / --list-rules)."""

    rule_id: str
    description: str
    severity: Severity
