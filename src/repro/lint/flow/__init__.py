"""flowlint: interprocedural determinism & task-concurrency analysis.

The third analyzer family on the shared lint chassis.  Where the AST
rule pack (``repro.lint.rules``) flags *syntactic* hazards one line at
a time, flowlint parses the whole package once, builds a module-level
call graph with per-function taint summaries, and reports
nondeterminism *flows*: a wall-clock read three calls away from a
digest is invisible to DET001 but is exactly what FLW001 exists for.

Public surface: :func:`analyze_paths` / :func:`analyze_sources` run the
whole pipeline; :data:`FLOW_RULES` carries the rule descriptors for
reporters and ``--list-rules``.
"""

from .analyzer import FlowAnalyzer, analyze_paths, analyze_sources
from .rules import FLOW_RULES, RULES_BY_ID

__all__ = [
    "FlowAnalyzer",
    "analyze_paths",
    "analyze_sources",
    "FLOW_RULES",
    "RULES_BY_ID",
]
