"""The FLW rule pack: descriptors plus the source/sink tables.

Dataflow family (findings anchored at the sink, with a full
source→sink trace):

``FLW001``  wall-clock taint reaches a determinism sink
``FLW002``  unseeded/global RNG or entropy taint reaches a sink
``FLW003``  environment-variable taint reaches a sink
``FLW004``  ``id()``/``hash()`` object-identity taint reaches a sink
``FLW005``  set-iteration order taint reaches a sink

Task-concurrency family (static race detection for the cooperative
generator-task scheduler and the sharded campaign):

``FLW101``  shared mutable state written after a yield point in a
            generator task, without scheduler mediation
``FLW102``  constant-seeded RNG constructed inside the shard-worker
            call graph (streams must derive from per-shard material)
``FLW103``  write to a ZoneCut-style cache after ``freeze()`` on the
            same receiver

The tables below drive :mod:`repro.lint.flow.harvest`; everything is
resolved through each module's (absolutized) import map, so aliasing
(``import time as t``) cannot hide a source.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..findings import Severity
from .model import (
    TAINT_CLOCK,
    TAINT_ENV,
    TAINT_OBJECT,
    TAINT_RNG,
    FlowRule,
)

__all__ = [
    "FLOW_RULES",
    "RULE_FOR_TAINT",
    "CLOCK_SOURCES",
    "RNG_SOURCES",
    "RNG_PREFIXES",
    "ENV_SOURCES",
    "OBJECT_SOURCES",
    "SOURCE_KINDS",
    "SINK_CALLS",
    "SINK_TYPE_METHODS",
    "ORDER_KILLERS",
    "WORKER_ROOTS",
    "FREEZABLE_METHODS",
]

FLOW_RULES: Tuple[FlowRule, ...] = (
    FlowRule(
        "FLW001",
        "wall-clock value flows into a determinism sink "
        "(digest/serialization/perf record/dataset merge)",
        Severity.ERROR,
    ),
    FlowRule(
        "FLW002",
        "global/unseeded RNG or entropy value flows into a "
        "determinism sink",
        Severity.ERROR,
    ),
    FlowRule(
        "FLW003",
        "environment-variable value flows into a determinism sink",
        Severity.ERROR,
    ),
    FlowRule(
        "FLW004",
        "id()/hash() object-identity value flows into a determinism "
        "sink (varies with PYTHONHASHSEED / allocation order)",
        Severity.ERROR,
    ),
    FlowRule(
        "FLW005",
        "set-iteration order flows into a determinism sink; sort "
        "before materializing",
        Severity.WARNING,
    ),
    FlowRule(
        "FLW101",
        "generator task writes shared mutable state after a yield "
        "point without scheduler mediation (cooperative race)",
        Severity.ERROR,
    ),
    FlowRule(
        "FLW102",
        "constant-seeded random.Random() inside the shard-worker call "
        "graph; derive the stream from per-shard material",
        Severity.WARNING,
    ),
    FlowRule(
        "FLW103",
        "write to a frozen cache (put/invalidate/flush after freeze() "
        "on the same receiver is a silent no-op)",
        Severity.ERROR,
    ),
)

# Concrete taint kind -> dataflow rule id.
RULE_FOR_TAINT: Dict[str, str] = {
    TAINT_CLOCK: "FLW001",
    TAINT_RNG: "FLW002",
    TAINT_ENV: "FLW003",
    TAINT_OBJECT: "FLW004",
    "iteration-order": "FLW005",
}

# --- Sources -----------------------------------------------------------
# Wall-clock reads.  Deliberately a superset of DET001's banned list:
# ctime/asctime/strftime-style formatters read the clock just as
# surely, and the whole point of the flow family is catching reads the
# syntactic rule does not already police.
CLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.times",
    }
)

# Entropy / global-RNG reads (exact names).
RNG_SOURCES = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

# Any call under these prefixes is a global-RNG draw.
RNG_PREFIXES = ("random.", "secrets.")
# ...except constructing an explicitly seeded stream, which is the
# sanctioned idiom (handled specially in harvest: random.Random with
# arguments is clean, without arguments it is entropy).
RNG_SEEDED_CONSTRUCTOR = "random.Random"

# Environment reads: resolved call names plus the mapping object whose
# subscripts/gets are environment reads.
ENV_SOURCES = frozenset({"os.getenv", "os.environ.get"})
ENV_MAPPING = "os.environ"

# Object-identity reads (builtin calls; PYTHONHASHSEED/allocation
# dependent).
OBJECT_SOURCES = frozenset({"id", "hash"})

SOURCE_KINDS = {
    **{name: TAINT_CLOCK for name in CLOCK_SOURCES},
    **{name: TAINT_RNG for name in RNG_SOURCES},
    **{name: TAINT_ENV for name in ENV_SOURCES},
    **{name: TAINT_OBJECT for name in OBJECT_SOURCES},
}

# --- Sinks -------------------------------------------------------------
# Resolved call name (matched on dotted suffix) -> sink label.  These
# are only the *primitive* endpoints: any package function whose
# parameter flows into one of them becomes a derived sink through the
# interprocedural param-to-sink summaries, so e.g. campaign_digest()
# and dataset_digest() need no entry here.
SINK_CALLS: Dict[str, str] = {
    "hashlib.sha256": "digest input",
    "hashlib.sha1": "digest input",
    "hashlib.sha224": "digest input",
    "hashlib.sha384": "digest input",
    "hashlib.sha512": "digest input",
    "hashlib.md5": "digest input",
    "hashlib.blake2b": "digest input",
    "hashlib.blake2s": "digest input",
    "hashlib.new": "digest input",
    "json.dumps": "serialized output",
    "json.dump": "serialized output",
    "PerfRecord": "committed perf record",
    "MeasurementDataset.merge": "dataset merge admission order",
    "ServingReport": "committed serving digest",
}

# Inferred receiver type prefix -> method names that are sinks on it.
# hashlib objects accumulate digest input via .update().
SINK_TYPE_METHODS: Dict[str, Dict[str, str]] = {
    "hashlib.": {"update": "digest input"},
}

# Calls that launder order taint: the result of sorted() is
# deterministic however unordered its input was.
ORDER_KILLERS = frozenset({"sorted", "min", "max", "sum", "len"})

# --- Concurrency family ------------------------------------------------
# Shard-worker entry points: functions (by bare name) whose reachable
# call graph must draw RNG streams only from per-shard material.
WORKER_ROOTS = ("_shard_worker",)

# Mutating methods that count as writes for FLW103's
# freeze-then-write check.
FREEZABLE_METHODS = frozenset({"put", "invalidate", "flush"})

RULES_BY_ID: Dict[str, FlowRule] = {rule.rule_id: rule for rule in FLOW_RULES}
__all__.append("RULES_BY_ID")
__all__.append("RNG_SEEDED_CONSTRUCTOR")
__all__.append("ENV_MAPPING")
