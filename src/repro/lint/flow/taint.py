"""Interprocedural taint propagation over function summaries.

For every function the fixpoint computes three relations:

``RET(f)``
    the concrete taints its return value can carry (with the hop chain
    back to each source);
``PASS(f)``
    which parameters flow through to the return value;
``SINKPAR(f)``
    which parameters reach a determinism sink — in ``f`` itself or in
    anything ``f`` calls (this is what turns ``campaign_digest()`` into
    a *derived* sink: its parameter flows into ``hashlib.sha256``
    two calls down, so every caller passing tainted data is flagged).

The analysis is context-insensitive: one summary per function, atom
sets joined over all call sites.  Termination is by normalization —
for every distinct (taint, source site) only the shortest hop chain is
kept, so the per-function state lives in a finite lattice and the
global loop stops as soon as one pass changes nothing (bounded by
``_MAX_ROUNDS`` as a belt-and-braces guard).

Findings are emitted in a final pass, anchored at the sink with the
full source→sink hop chain attached as the finding's trace.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..findings import Finding, TraceHop
from .callgraph import CallGraph
from .model import (
    CONCRETE_TAINTS,
    TAINT_ORDER,
    TAINT_SETLIKE,
    Atom,
    CallAtom,
    CallRecord,
    FunctionSummary,
    ParamAtom,
    Site,
    SourceAtom,
)
from .rules import RULE_FOR_TAINT, RULES_BY_ID

__all__ = ["TaintAnalyzer"]

_MAX_ROUNDS = 24
_MAX_HOPS = 16

# A hop is (site, note); a tainted value is (kind, source-site, detail,
# hops); a param flow is (index, hops); a sink flow is (label,
# sink-site, hops from parameter entry to the sink).
Hop = Tuple[Site, str]
TV = Tuple[str, Site, str, Tuple[Hop, ...]]
PF = Tuple[int, Tuple[Hop, ...]]
SinkFlow = Tuple[str, Site, Tuple[Hop, ...]]


class _FuncTaint:
    """Fixpoint state for one function."""

    __slots__ = ("ret_tvs", "ret_params", "sink_flows")

    def __init__(self) -> None:
        self.ret_tvs: FrozenSet[TV] = frozenset()
        self.ret_params: FrozenSet[PF] = frozenset()
        self.sink_flows: Dict[int, FrozenSet[SinkFlow]] = {}

    def state(self):
        return (
            self.ret_tvs,
            self.ret_params,
            tuple(sorted(self.sink_flows.items())),
        )


def _shortest_tvs(tvs: Set[TV]) -> FrozenSet[TV]:
    best: Dict[Tuple[str, Site, str], TV] = {}
    for tv in tvs:
        identity = tv[:3]
        kept = best.get(identity)
        if kept is None or len(tv[3]) < len(kept[3]):
            best[identity] = tv
    return frozenset(best.values())


def _shortest_pfs(pfs: Set[PF]) -> FrozenSet[PF]:
    best: Dict[int, PF] = {}
    for pf in pfs:
        kept = best.get(pf[0])
        if kept is None or len(pf[1]) < len(kept[1]):
            best[pf[0]] = pf
    return frozenset(best.values())


def _shortest_flows(flows: Set[SinkFlow]) -> FrozenSet[SinkFlow]:
    best: Dict[Tuple[str, Site], SinkFlow] = {}
    for flow in flows:
        identity = flow[:2]
        kept = best.get(identity)
        if kept is None or len(flow[2]) < len(kept[2]):
            best[identity] = flow
    return frozenset(best.values())


def _extend(hops: Tuple[Hop, ...], *extra: Hop) -> Tuple[Hop, ...]:
    combined = hops + tuple(extra)
    return combined[:_MAX_HOPS]


class TaintAnalyzer:
    """Runs the fixpoint and emits dataflow findings."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.table: Dict[str, _FuncTaint] = {
            key: _FuncTaint() for key in graph.summaries
        }

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        keys = sorted(self.graph.summaries)
        for _ in range(_MAX_ROUNDS):
            changed = False
            for key in keys:
                if self._recompute(key):
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for key in keys:
            findings.extend(self._emit(key))
        return self._dedupe(findings)

    # ------------------------------------------------------------------
    def _recompute(self, key: str) -> bool:
        summary = self.graph.summaries[key]
        state = self.table[key]
        before = state.state()

        ret_tvs: Set[TV] = set(state.ret_tvs)
        ret_params: Set[PF] = set(state.ret_params)
        tvs, pfs = self._expand(set(summary.returns))
        ret_tvs |= tvs
        ret_params |= pfs

        sink_flows: Dict[int, Set[SinkFlow]] = {
            index: set(flows) for index, flows in state.sink_flows.items()
        }
        for hit in summary.sink_hits:
            _, hit_pfs = self._expand(set(hit.atoms))
            for index, hops in hit_pfs:
                sink_flows.setdefault(index, set()).add(
                    (
                        hit.label,
                        hit.site,
                        _extend(hops, (hit.site, f"reaches {hit.label}")),
                    )
                )
        for record in summary.calls:
            callee_key = self.graph.resolve_hint(record.callee)
            if callee_key is None:
                continue
            callee_state = self.table[callee_key]
            if not callee_state.sink_flows:
                continue
            callee_summary = self.graph.summaries[callee_key]
            for arg_index, param_index in _alignment(
                callee_summary, record
            ):
                flows = callee_state.sink_flows.get(param_index)
                if not flows:
                    continue
                _, arg_pfs = self._expand(set(record.args[arg_index]))
                call_hop: Hop = (
                    record.site,
                    f"passed to {callee_summary.qualname}()",
                )
                for index, hops in arg_pfs:
                    for label, sink_site, flow_hops in flows:
                        sink_flows.setdefault(index, set()).add(
                            (
                                label,
                                sink_site,
                                _extend(hops, call_hop) + flow_hops,
                            )
                        )

        state.ret_tvs = _shortest_tvs(ret_tvs)
        state.ret_params = _shortest_pfs(ret_params)
        state.sink_flows = {
            index: _shortest_flows(flows)
            for index, flows in sink_flows.items()
            if flows
        }
        return state.state() != before

    # ------------------------------------------------------------------
    def _expand(self, atoms: Set[Atom]) -> Tuple[Set[TV], Set[PF]]:
        tvs: Set[TV] = set()
        pfs: Set[PF] = set()
        for atom in atoms:
            if isinstance(atom, SourceAtom):
                tvs.add(
                    (
                        atom.kind,
                        atom.site,
                        atom.detail,
                        ((atom.site, atom.detail),),
                    )
                )
            elif isinstance(atom, ParamAtom):
                pfs.add((atom.index, ()))
            elif isinstance(atom, CallAtom):
                call_tvs, call_pfs = self._expand_call(atom)
                tvs |= call_tvs
                pfs |= call_pfs
        return tvs, pfs

    def _expand_call(self, atom: CallAtom) -> Tuple[Set[TV], Set[PF]]:
        callee_key = self.graph.resolve_hint(atom.callee)
        if callee_key is None:
            # Unresolved: conservative pass-through of receiver + args.
            merged: Set[Atom] = set()
            for arg in atom.args:
                merged |= set(arg)
            return self._expand(merged)
        callee_state = self.table[callee_key]
        callee_summary = self.graph.summaries[callee_key]
        tvs: Set[TV] = set()
        pfs: Set[PF] = set()
        return_hop: Hop = (
            atom.site,
            f"returned by {callee_summary.qualname}()",
        )
        for kind, site, detail, hops in callee_state.ret_tvs:
            tvs.add((kind, site, detail, _extend(hops, return_hop)))
        if callee_state.ret_params:
            alignment = dict(
                (param, arg)
                for arg, param in _alignment_for_atom(callee_summary, atom)
            )
            for param_index, param_hops in callee_state.ret_params:
                arg_index = alignment.get(param_index)
                if arg_index is None or arg_index >= len(atom.args):
                    continue
                arg_tvs, arg_pfs = self._expand(set(atom.args[arg_index]))
                for kind, site, detail, hops in arg_tvs:
                    tvs.add(
                        (
                            kind,
                            site,
                            detail,
                            _extend(hops, return_hop) + param_hops,
                        )
                    )
                for index, hops in arg_pfs:
                    pfs.add((index, _extend(hops, return_hop) + param_hops))
        return tvs, pfs

    # ------------------------------------------------------------------
    def _emit(self, key: str) -> List[Finding]:
        summary = self.graph.summaries[key]
        findings: List[Finding] = []
        for hit in summary.sink_hits:
            hit_tvs, _ = self._expand(set(hit.atoms))
            for tv in hit_tvs:
                finding = self._finding_for(
                    tv,
                    hit.label,
                    hit.site,
                    extra_hops=((hit.site, f"reaches {hit.label}"),),
                )
                if finding is not None:
                    findings.append(finding)
        for record in summary.calls:
            callee_key = self.graph.resolve_hint(record.callee)
            if callee_key is None:
                continue
            callee_state = self.table[callee_key]
            if not callee_state.sink_flows:
                continue
            callee_summary = self.graph.summaries[callee_key]
            for arg_index, param_index in _alignment(callee_summary, record):
                flows = callee_state.sink_flows.get(param_index)
                if not flows:
                    continue
                arg_tvs, _ = self._expand(set(record.args[arg_index]))
                call_hop: Hop = (
                    record.site,
                    f"passed to {callee_summary.qualname}()",
                )
                for kind, site, detail, hops in arg_tvs:
                    for label, sink_site, flow_hops in sorted(flows):
                        finding = self._finding_for(
                            (
                                kind,
                                site,
                                detail,
                                _extend(hops, call_hop) + flow_hops,
                            ),
                            label,
                            sink_site,
                            extra_hops=(),
                        )
                        if finding is not None:
                            findings.append(finding)
        return findings

    def _finding_for(
        self,
        tv: TV,
        label: str,
        sink_site: Site,
        extra_hops: Tuple[Hop, ...],
    ) -> Optional[Finding]:
        kind, source_site, detail, hops = tv
        if kind == TAINT_SETLIKE:
            # An unordered collection consumed whole by a sink exposes
            # its iteration order (merge admission, serialization).
            kind = TAINT_ORDER
            detail = f"{detail} (iteration order consumed by sink)"
        if kind not in CONCRETE_TAINTS:
            return None
        rule = RULES_BY_ID[RULE_FOR_TAINT[kind]]
        trace = tuple(
            TraceHop(path=site.path, line=site.line, column=site.column, note=note)
            for site, note in (hops + extra_hops)
        )
        return Finding(
            path=sink_site.path,
            line=sink_site.line,
            column=sink_site.column,
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=(
                f"{detail} at {source_site.path}:{source_site.line} "
                f"flows into {label}"
            ),
            snippet=sink_site.text,
            trace=trace,
        )

    @staticmethod
    def _dedupe(findings: Sequence[Finding]) -> List[Finding]:
        best: Dict[Tuple[str, str, int, int, str], Finding] = {}
        for finding in findings:
            identity = (
                finding.rule_id,
                finding.path,
                finding.line,
                finding.column,
                finding.message,
            )
            kept = best.get(identity)
            if kept is None or len(finding.trace) < len(kept.trace):
                best[identity] = finding
        return sorted(best.values())


def _is_method(summary: FunctionSummary) -> bool:
    return (
        "." in summary.qualname
        and bool(summary.params)
        and summary.params[0] in ("self", "cls")
    )


def _align(
    summary: FunctionSummary, arg_count: int, has_receiver: bool
) -> List[Tuple[int, int]]:
    """(arg index, callee param index) pairs for one call.

    Methods called through a receiver line up 1:1 (receiver ↔ self);
    constructors and unbound calls shift by one; plain functions called
    through a module attribute drop the module "receiver" slot.
    """
    pairs: List[Tuple[int, int]] = []
    method = _is_method(summary)
    for arg_index in range(arg_count):
        if has_receiver:
            param_index = arg_index if method else arg_index - 1
        else:
            param_index = arg_index + 1 if method else arg_index
        if 0 <= param_index < len(summary.params):
            pairs.append((arg_index, param_index))
    return pairs


def _alignment(
    summary: FunctionSummary, record: CallRecord
) -> List[Tuple[int, int]]:
    return _align(summary, len(record.args), record.has_receiver)


def _alignment_for_atom(
    summary: FunctionSummary, atom: CallAtom
) -> List[Tuple[int, int]]:
    return _align(summary, len(atom.args), atom.has_receiver)
