"""The shipped rule pack.

Determinism
-----------
``DET001``  wall-clock reads outside :mod:`repro.net.clock`
``DET002``  global / unseeded randomness (module-level ``random.*``,
            ``os.urandom``, ``uuid.uuid4``, ``secrets``)
``DET003``  unordered ``set`` / ``dict.keys`` iteration feeding ordered
            output without ``sorted()``
``DET004``  full-world iteration (``.truths`` / ``.targets()``) inside
            epoch-scoped code (``repro/core/epoch*``), where steady-state
            cost must scale with the delta, not the universe

Error hygiene
-------------
``ERR001``  bare/broad ``except`` whose body only swallows

DNS semantics
-------------
``DNS001``  raw string comparison against DNS-name-like literals where
            :class:`repro.dns.name.DnsName` should be used
``RES001``  ``Resolver`` construction / ``Network.query`` call sites
            without explicit timeout/retry policy
``RES002``  retry loops that never bound their attempts or that wait a
            fixed constant between attempts instead of backing off

Architecture
------------
``ARCH001`` import-layering violations: ``repro.dns`` must not import
            ``repro.net``/``repro.core``, ``repro.worldgen`` and
            ``repro.zonelint`` must not import ``repro.core``, and
            ``repro.lint``/``repro.inet`` import nothing above the
            stdlib
"""

from __future__ import annotations

import ast
import re
import sys
from typing import Iterator, List, Optional, Tuple, Type

from .engine import ModuleContext, Rule
from .findings import Finding, Severity

__all__ = [
    "ALL_RULES",
    "WallClockRule",
    "GlobalRandomRule",
    "UnsortedSetIterationRule",
    "EpochFullWorldIterationRule",
    "SilentExceptRule",
    "StringDnsComparisonRule",
    "MissingTimeoutRetryRule",
    "RetryBackoffRule",
    "ImportLayeringRule",
]


class WallClockRule(Rule):
    """DET001: wall-clock time must come from the simulated clock.

    Any of these anywhere but ``net/clock.py`` silently couples a run's
    output to the machine it ran on.
    """

    rule_id = "DET001"
    description = (
        "wall-clock call outside net/clock.py; read time from SimulatedClock"
    )
    severity = Severity.ERROR
    interests = (ast.Call,)

    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.localtime",
            "time.gmtime",
            "time.sleep",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )
    _EXEMPT_SUFFIXES = ("net/clock.py", "inet/clock.py")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if ctx.path.endswith(self._EXEMPT_SUFFIXES):
            return
        resolved = ctx.resolve(node.func)
        if resolved in self._BANNED:
            yield self.finding(
                node,
                ctx,
                f"wall-clock call {resolved}() breaks determinism; "
                "thread a SimulatedClock through instead",
            )


class GlobalRandomRule(Rule):
    """DET002: randomness must be an injected, seeded ``random.Random``.

    Module-level ``random.*`` draws from interpreter-global state that
    any import or test ordering can perturb; ``os.urandom``/``uuid4``/
    ``secrets`` are entropy by design.  ``random.Random(seed)`` is the
    sanctioned construction (see ``net/latency.py`` for the idiom).
    """

    rule_id = "DET002"
    description = (
        "global or unseeded RNG; inject a seeded random.Random instead"
    )
    severity = Severity.ERROR
    interests = (ast.Call,)

    _BANNED_EXACT = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved in self._BANNED_EXACT or resolved.startswith("secrets."):
            yield self.finding(
                node,
                ctx,
                f"{resolved}() is non-deterministic entropy; derive ids "
                "from the world seed instead",
            )
            return
        if resolved == "random.SystemRandom":
            yield self.finding(
                node, ctx, "random.SystemRandom is OS entropy; use a seeded "
                "random.Random",
            )
            return
        if resolved == "random.Random":
            if not node.args and not node.keywords:
                yield self.finding(
                    node,
                    ctx,
                    "random.Random() without a seed falls back to OS "
                    "entropy; pass an explicit seed",
                )
            return
        if resolved.startswith("random."):
            yield self.finding(
                node,
                ctx,
                f"module-level {resolved}() uses the global RNG; "
                "call methods on an injected seeded random.Random",
            )


def _unordered_source(node: ast.expr) -> Optional[str]:
    """Describe ``node`` when its iteration order is set-like, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys()"
    return None


class UnsortedSetIterationRule(Rule):
    """DET003: unordered iteration must not feed ordered output.

    ``list(set(...))`` and friends are ordered by hash-table internals;
    the order reaches figures and CSV exports and varies with
    ``PYTHONHASHSEED`` history of the process.  Wrap the source in
    ``sorted()`` when the order can reach output.
    """

    rule_id = "DET003"
    description = (
        "unordered set/dict.keys iteration feeding ordered output; "
        "wrap in sorted()"
    )
    severity = Severity.WARNING
    interests = (ast.Call, ast.ListComp, ast.GeneratorExp)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._visit_call(node, ctx)
        else:
            assert isinstance(node, (ast.ListComp, ast.GeneratorExp))
            if isinstance(node, ast.GeneratorExp):
                return  # a bare generator does not materialise an order
            for generator in node.generators:
                source = _unordered_source(generator.iter)
                if source is not None:
                    yield self.finding(
                        node,
                        ctx,
                        f"list comprehension iterates {source} in hash "
                        "order; sort the iterable",
                    )

    def _visit_call(
        self, node: ast.Call, ctx: ModuleContext
    ) -> Iterator[Finding]:
        func = node.func
        consumer: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in ("list", "tuple"):
            consumer = f"{func.id}()"
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            consumer = "str.join()"
        if consumer is None or len(node.args) != 1:
            return
        source = _unordered_source(node.args[0])
        if source is not None:
            yield self.finding(
                node,
                ctx,
                f"{consumer} over {source} materialises hash order; "
                "wrap the iterable in sorted()",
            )


class SilentExceptRule(Rule):
    """ERR001: broad exception handlers must not silently swallow.

    A bare ``except:`` (or ``except Exception:``) whose body is only
    ``pass``/``continue`` turns data loss into silence — exactly how SOA
    parse failures used to vanish from the centralization analysis.
    Narrow the exception type and count or log what was skipped.
    """

    rule_id = "ERR001"
    description = "bare/broad except that only passes or continues"
    severity = Severity.ERROR
    interests = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, handler: ast.ExceptHandler, ctx: ModuleContext) -> bool:
        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Tuple):
            return any(
                ctx.dotted_name(element) in self._BROAD
                for element in handler.type.elts
            )
        return ctx.dotted_name(handler.type) in self._BROAD

    @staticmethod
    def _is_silent(body: List[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, (ast.Pass, ast.Continue)):
                continue
            if (
                isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis
            ):
                continue
            return False
        return True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if self._is_broad(node, ctx) and self._is_silent(node.body):
            label = (
                "bare except"
                if node.type is None
                else f"except {ctx.dotted_name(node.type) or '...'}"
            )
            yield self.finding(
                node,
                ctx,
                f"{label} silently swallows errors; narrow the exception "
                "type and count/report the skipped item",
            )


_DOMAIN_LITERAL = re.compile(
    r"^(?:[a-z0-9_](?:[a-z0-9_-]*[a-z0-9_])?\.)+[a-z]{2,}\.?$",
    re.IGNORECASE,
)

_DNS_TOKENS = frozenset(
    {
        "domain",
        "domains",
        "qname",
        "mname",
        "rname",
        "nsdname",
        "hostname",
        "hostnames",
        "fqdn",
        "dns",
        "zone",
        "zones",
        "suffix",
        "suffixes",
        "ns",
        "nameserver",
        "nameservers",
        "apex",
        "origin",
    }
)


def _is_dns_flavoured(expr: ast.expr, ctx: ModuleContext) -> bool:
    """Does this operand smell like it holds a DNS name?"""
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "str":
            return True
        return False
    dotted = ctx.dotted_name(expr)
    if dotted is None:
        return False
    tokens = {token for part in dotted.lower().split(".") for token in part.split("_")}
    return bool(tokens & _DNS_TOKENS)


class StringDnsComparisonRule(Rule):
    """DNS001: compare ``DnsName`` values, not raw strings.

    DNS names are case-insensitive (RFC 1034 §3.1) and may carry a
    trailing dot; ``ns1.Gov.AU`` == ``ns1.gov.au.`` as names but not as
    strings.  Every component of this reproduction normalises on
    ``DnsName`` construction — string comparison bypasses that.
    """

    rule_id = "DNS001"
    description = (
        "raw ==/in comparison against a DNS-name literal; use DnsName"
    )
    severity = Severity.WARNING
    interests = (ast.Compare,)

    _OPS = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        if not all(isinstance(op, self._OPS) for op in node.ops):
            return
        operands: List[ast.expr] = [node.left, *node.comparators]
        literal: Optional[str] = None
        for operand in operands:
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, str)
                and _DOMAIN_LITERAL.match(operand.value)
            ):
                literal = operand.value
                break
        if literal is None:
            return
        if any(_is_dns_flavoured(operand, ctx) for operand in operands):
            yield self.finding(
                node,
                ctx,
                f"string comparison against {literal!r} ignores DNS "
                "case-insensitivity; compare "
                f"DnsName.parse({literal!r}) values instead",
            )


class MissingTimeoutRetryRule(Rule):
    """RES001: query policy must be explicit at resolver/network edges.

    The paper's §III-B semantics (3 s timeout, one retransmission, a
    next-day retry round) are load-bearing for every defectiveness
    number; a ``Resolver`` built with defaults hides that policy.
    """

    rule_id = "RES001"
    description = (
        "Resolver/Network.query call site without explicit "
        "timeout/retry arguments"
    )
    severity = Severity.ERROR
    interests = (ast.Call,)

    @staticmethod
    def _has_double_star(node: ast.Call) -> bool:
        return any(keyword.arg is None for keyword in node.keywords)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if self._has_double_star(node):
            return
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        keyword_names = {kw.arg for kw in node.keywords}
        last = dotted.rpartition(".")[2]
        if last == "Resolver":
            missing = {"timeout", "retries"} - keyword_names
            if missing:
                wanted = ", ".join(sorted(missing))
                yield self.finding(
                    node,
                    ctx,
                    f"Resolver(...) without explicit {wanted}; the paper's "
                    "§III-B query policy must be stated at construction",
                )
        elif last == "query" and "network" in dotted.lower():
            if "timeout" not in keyword_names:
                yield self.finding(
                    node,
                    ctx,
                    "network query without an explicit timeout= argument; "
                    "silent defaults hide the probe's timeout policy",
                )


class RetryBackoffRule(Rule):
    """RES002: retry loops must bound attempts and back off adaptively.

    A loop that catches a failure and ``continue``s is a retry loop.
    Two shapes make such a loop hostile to both the measured
    infrastructure and the campaign's own tail latency:

    * ``while True`` with no attempt bound — the success path exits,
      but a *persistently* failing destination is hammered forever;
    * a fixed constant wait between attempts — synchronized retries
      re-arrive in lockstep, exactly what rate limiters punish.

    :class:`repro.net.resilience.BackoffPolicy` is the sanctioned
    spacing (exponential growth, seeded jitter, a cap); attempt bounds
    belong in ``ProbeConfig.retries``.  Only the loop's own level is
    inspected — nested loops and function definitions get their own
    visit — and each loop yields at most one finding.
    """

    rule_id = "RES002"
    description = (
        "retry loop with unbounded attempts or a fixed inter-attempt "
        "wait; bound attempts and use exponential backoff with jitter"
    )
    severity = Severity.WARNING
    interests = (ast.For, ast.While)

    # Subtrees owned by another scope/visit; the shallow walk yields
    # these nodes but does not descend into them.
    _NESTED_SCOPES = (
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.ClassDef,
        ast.Lambda,
    )

    _WAIT_ATTRS = frozenset({"sleep", "advance"})

    @classmethod
    def _shallow(cls, statements: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk a loop body without entering nested loops or defs."""
        stack: List[ast.AST] = list(statements)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, cls._NESTED_SCOPES):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _is_retry_shaped(cls, loop: ast.stmt) -> bool:
        """Does the loop catch an exception and continue to retry?"""
        assert isinstance(loop, (ast.For, ast.While))
        for node in cls._shallow(loop.body):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if any(
                    isinstance(inner, ast.Continue)
                    for inner in cls._shallow(handler.body)
                ):
                    return True
        return False

    def _fixed_wait(
        self, loop: ast.stmt
    ) -> Optional[Tuple[ast.Call, float]]:
        """A ``sleep``/``advance`` call with a constant positive arg."""
        assert isinstance(loop, (ast.For, ast.While))
        for node in self._shallow(loop.body):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name not in self._WAIT_ATTRS:
                continue
            first = node.args[0]
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, (int, float))
                and not isinstance(first.value, bool)
                and first.value > 0
            ):
                return node, float(first.value)
        return None

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.For, ast.While))
        if not self._is_retry_shaped(node):
            return
        if (
            isinstance(node, ast.While)
            and isinstance(node.test, ast.Constant)
            and bool(node.test.value)
        ):
            # A success exit does not bound the failure path.
            yield self.finding(
                node,
                ctx,
                "while-True retry loop never bounds failed attempts; a "
                "persistently failing destination is retried forever — "
                "bound the attempts and surface exhaustion as an outcome",
            )
            return
        wait = self._fixed_wait(node)
        if wait is not None:
            call, seconds = wait
            yield self.finding(
                call,
                ctx,
                f"retry loop waits a fixed {seconds:g}s between attempts; "
                "synchronized retries arrive in lockstep — use "
                "BackoffPolicy (exponential growth with seeded jitter)",
            )


class ImportLayeringRule(Rule):
    """ARCH001: enforce the repository's import layering.

    The dependency direction is ``lint < inet < net < dns < worldgen <
    zonelint < core``: the DNS data model must not reach down into the
    transport substrate or up into the analyses (the shared wire
    primitives both need live in ``repro.inet``), world generation must
    stay measurable-by (not dependent-on) the measurement pipeline,
    zonelint must derive truth without the active pipeline it verifies,
    and the lint and inet packages have to stay importable before
    anything else in the tree even parses.
    """

    rule_id = "ARCH001"
    description = (
        "import crosses a package layering boundary "
        "(dns→net/core, worldgen→core, zonelint→core, "
        "servelint→core, lint/inet→non-stdlib)"
    )
    severity = Severity.ERROR
    interests = (ast.Import, ast.ImportFrom)

    # own package prefix → forbidden imported-package prefixes
    _FORBIDDEN = (
        ("repro.dns", ("repro.net", "repro.core")),
        ("repro.worldgen", ("repro.core",)),
        ("repro.zonelint", ("repro.core",)),
        ("repro.servelint", ("repro.core",)),
    )

    # Packages that must stay importable on nothing but the stdlib and
    # their own contents (the bottom of the layering).
    _SELF_CONTAINED = ("repro.lint", "repro.inet")

    @staticmethod
    def _own_module(ctx: ModuleContext) -> Optional[str]:
        """Dotted module name from the reported path, or None when the
        file is not under a ``repro`` package root."""
        parts = ctx.path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return None
        tail = parts[parts.index("repro"):]
        if not tail[-1].endswith(".py"):
            return None
        # ``__init__`` is kept as a component: ``repro/lint/__init__.py``
        # behaves like a module of the ``repro.lint`` package, which
        # makes relative-import resolution uniform (level N strips N
        # trailing components).
        tail[-1] = tail[-1][: -len(".py")]
        return ".".join(tail)

    @staticmethod
    def _resolve_relative(own: str, level: int, module: str) -> Optional[str]:
        """Absolute form of a ``from ...x import y`` target."""
        # For a module file, ``from . import x`` means the containing
        # package; each extra dot climbs one more package.
        base = own.split(".")[:-level] if level <= own.count(".") + 1 else None
        if base is None:
            return None
        name = ".".join(base)
        if module:
            name = f"{name}.{module}" if name else module
        return name

    def _targets(
        self, node: ast.AST, own: str
    ) -> Iterator[str]:
        """Absolute dotted names this import statement reaches."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
            return
        assert isinstance(node, ast.ImportFrom)
        if node.level == 0:
            base = node.module or ""
        else:
            resolved = self._resolve_relative(own, node.level, node.module or "")
            if resolved is None:
                return
            base = resolved
        if base:
            yield base
        # ``from pkg import sub`` may bind a submodule: check the
        # joined form too so package-level re-imports don't slip by.
        for alias in node.names:
            if alias.name != "*" and base:
                yield f"{base}.{alias.name}"

    @staticmethod
    def _within(target: str, package: str) -> bool:
        return target == package or target.startswith(package + ".")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        own = self._own_module(ctx)
        if own is None:
            return
        targets = list(self._targets(node, own))
        for package in self._SELF_CONTAINED:
            if self._within(own, package):
                yield from self._check_self_contained(
                    node, ctx, targets, package
                )
                return
        for package, forbidden in self._FORBIDDEN:
            if not self._within(own, package):
                continue
            for target in targets:
                for banned in forbidden:
                    if self._within(target, banned):
                        yield self.finding(
                            node,
                            ctx,
                            f"{package} must not import {banned} "
                            f"(imports {target})",
                        )
                        return
            return

    def _check_self_contained(
        self,
        node: ast.AST,
        ctx: ModuleContext,
        targets: List[str],
        package: str,
    ) -> Iterator[Finding]:
        stdlib = getattr(sys, "stdlib_module_names", None)
        for target in targets:
            if self._within(target, "repro"):
                if self._within(target, package):
                    continue
                yield self.finding(
                    node,
                    ctx,
                    f"{package} must stay importable on its own; it must "
                    f"not import {target}",
                )
                return
            head = target.partition(".")[0]
            if stdlib is not None and head and head not in stdlib:
                yield self.finding(
                    node,
                    ctx,
                    f"{package} imports non-stdlib module {head!r}; this "
                    "layer depends on nothing above the stdlib",
                )
                return


class EpochFullWorldIterationRule(Rule):
    """DET004: epoch-scoped code must not iterate the full world.

    The longitudinal loop's whole value proposition is that a
    steady-state epoch costs O(changed), not O(universe).  A ``for``
    loop or comprehension that walks ``<world>.truths`` or a
    ``.targets()`` call inside ``repro/core/epoch*`` re-introduces the
    full-world scan the incremental design exists to avoid — and, by
    iterating generation-order mappings rather than the dataset's
    admission order, usually a nondeterministic one too.  Bootstrap-
    style full probes belong behind an explicit universe snapshot (a
    plain dict taken once at construction), which this rule does not
    match.
    """

    rule_id = "DET004"
    description = (
        "full-world iteration in epoch-scoped code; steady-state "
        "epochs must scale with the delta, not the universe"
    )
    severity = Severity.ERROR
    interests = (
        ast.For,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    _PATH = re.compile(r"(^|/)repro/core/epoch[^/]*\.py$")
    _VIEWS = frozenset({"values", "items", "keys"})

    def _full_world_source(self, expr: ast.AST) -> Optional[str]:
        """Describe ``expr`` if it enumerates the full world."""
        if isinstance(expr, ast.Attribute) and expr.attr == "truths":
            return ".truths"
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ):
            func = expr.func
            if func.attr == "targets" and not expr.args:
                return ".targets()"
            if func.attr in self._VIEWS:
                inner = self._full_world_source(func.value)
                if inner is not None:
                    return f"{inner}.{func.attr}()"
        return None

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._PATH.search(ctx.path):
            return
        if isinstance(node, ast.For):
            iterables = [node.iter]
        else:
            assert isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            )
            iterables = [generator.iter for generator in node.generators]
        for iterable in iterables:
            source = self._full_world_source(iterable)
            if source is not None:
                yield self.finding(
                    node,
                    ctx,
                    f"epoch-scoped code iterates the full world via "
                    f"{source}; probe the changed/flagged subset instead",
                )


ALL_RULES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    GlobalRandomRule,
    UnsortedSetIterationRule,
    EpochFullWorldIterationRule,
    SilentExceptRule,
    StringDnsComparisonRule,
    MissingTimeoutRetryRule,
    RetryBackoffRule,
    ImportLayeringRule,
)
