"""repro — reproduction of "A Comprehensive, Longitudinal Study of
Government DNS Deployment at Global Scale" (DSN 2022).

Layers, bottom-up:

- :mod:`repro.net` — simulated internetwork (addresses, time, delivery);
- :mod:`repro.dns` — from-scratch DNS (zones, servers, resolver);
- :mod:`repro.geo` — UN regions, AS registry, GeoIP;
- :mod:`repro.registry` — ccTLD policies, registrar, whois, archive;
- :mod:`repro.pdns` — passive-DNS database (DNSDB stand-in);
- :mod:`repro.worldgen` — synthetic global government-DNS ecosystem;
- :mod:`repro.core` — the paper's measurement pipeline and analyses;
- :mod:`repro.report` — table/figure rendering and export.

Quick start::

    from repro.worldgen import WorldGenerator, WorldConfig
    from repro.core import GovernmentDnsStudy

    world = WorldGenerator(WorldConfig(seed=7, scale=0.02)).generate()
    study = GovernmentDnsStudy(world)
    print(study.headline())
"""

from .core.study import GovernmentDnsStudy
from .worldgen.config import WorldConfig
from .worldgen.generator import World, WorldGenerator

__version__ = "1.0.0"

__all__ = ["GovernmentDnsStudy", "WorldConfig", "World", "WorldGenerator", "__version__"]
