"""Wire-level primitives shared by the transport substrate and the DNS
data model.

``repro.inet`` is the bottom of the package layering (``lint < inet <
net < dns < worldgen < zonelint < core``): it holds the value types and
protocols that both :mod:`repro.net` (the simulated internetwork) and
:mod:`repro.dns` (the DNS data model) need — IPv4 addresses, the
simulated clock, the query-transport protocol and its timeout
exception, and the retransmission backoff policy.  Keeping them here is
what lets ``repro.dns`` stay independent of the transport substrate
(ARCH001): the data model names addresses and reads simulated time
without importing the delivery fabric that uses them.

Everything in this package is stdlib-only and importable on its own,
exactly like :mod:`repro.lint`.
"""

from __future__ import annotations

from .address import BlockAllocator, IPv4Address, IPv4Prefix, parse_ipv4
from .backoff import BackoffPolicy
from .clock import (
    SECONDS_PER_DAY,
    SimulatedClock,
    date_to_epoch,
    days_in_year,
    epoch_to_date,
    year_bounds,
)
from .transport import Host, NetworkError, QueryTimeout, QueryTransport

__all__ = [
    "BlockAllocator",
    "IPv4Address",
    "IPv4Prefix",
    "parse_ipv4",
    "BackoffPolicy",
    "SECONDS_PER_DAY",
    "SimulatedClock",
    "date_to_epoch",
    "days_in_year",
    "epoch_to_date",
    "year_bounds",
    "Host",
    "NetworkError",
    "QueryTimeout",
    "QueryTransport",
]
