"""Retransmission spacing policy.

:class:`BackoffPolicy` is frozen configuration shared by the resolver's
retransmission loop (:mod:`repro.dns.resolver`) and the prober's
client-side resilience machinery (:mod:`repro.net.resilience`, which
re-exports it).  Callers pass their own seeded :class:`random.Random`
so jitter draws stay inside the caller's deterministic event order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff between retransmissions.

    The delay before retransmission ``attempt + 1`` (``attempt`` counts
    completed, timed-out transmissions, starting at 1) is::

        min(cap, base * multiplier ** (attempt - 1)) * (1 + jitter * u)

    where ``u`` is drawn uniformly from ``[0, 1)`` on the caller's RNG.
    ``base = 0`` reproduces the historical immediate retransmit.
    """

    base: float = 0.0
    multiplier: float = 2.0
    cap: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"backoff base must be >= 0, got {self.base}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if self.cap < self.base:
            raise ValueError(
                f"backoff cap {self.cap} must be >= base {self.base}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait after the ``attempt``-th timed-out send."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if self.base == 0.0:
            return 0.0
        spacing = min(self.cap, self.base * self.multiplier ** (attempt - 1))
        if self.jitter:
            spacing *= 1.0 + self.jitter * rng.random()
        return spacing
