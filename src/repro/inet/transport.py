"""Transport-neutral delivery contracts.

The DNS resolver and the authoritative servers need to talk *about* a
transport without depending on the concrete simulated internetwork in
:mod:`repro.net.network`: the resolver issues blocking queries against
anything satisfying :class:`QueryTransport`, servers subclass
:class:`Host`, and silence surfaces as :class:`QueryTimeout`.  The
concrete :class:`repro.net.network.Network` implements the protocol and
re-exports these names, so the exception a transport raises and the
exception the resolver catches are one class object.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from .address import IPv4Address
from .clock import SimulatedClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Protocol
else:  # Protocol is typing-only; keep a runtime no-op base for 3.9.
    Protocol = object

__all__ = ["NetworkError", "QueryTimeout", "Host", "QueryTransport"]


class NetworkError(Exception):
    """Base class for simulated-network failures."""


class QueryTimeout(NetworkError):
    """No response arrived within the caller's timeout.

    Unreachable addresses, dropped datagrams, and servers that are
    administratively down all look identical to the client — exactly as
    on the real Internet.
    """

    def __init__(self, destination: IPv4Address, timeout: float) -> None:
        super().__init__(f"query to {destination} timed out after {timeout}s")
        self.destination = destination
        self.timeout = timeout


class Host:
    """Anything that can be attached to the network at an address.

    Subclasses implement :meth:`handle_datagram`; returning ``None``
    means the host silently drops the datagram (the client will time
    out).
    """

    def handle_datagram(self, payload: Any, source: IPv4Address) -> Optional[Any]:
        raise NotImplementedError


class QueryTransport(Protocol):
    """Structural type of the transport the resolver drives.

    One blocking request/response exchange charged to a simulated
    clock; the resolver never needs topology management, so the
    protocol stays this narrow.
    """

    clock: SimulatedClock

    def query(
        self,
        destination: IPv4Address,
        payload: Any,
        source: Optional[IPv4Address] = None,
        timeout: float = 5.0,
    ) -> Any:
        """Return the response payload or raise :class:`QueryTimeout`."""
        ...
