"""IPv4 addresses, prefixes, and block allocation.

The paper's diversity analysis (Table I) counts, for each domain, the
distinct IPv4 addresses, /24 prefixes, and autonomous systems hosting its
authoritative nameservers.  This module provides a compact IPv4 model:
addresses are plain ``int`` under the hood (hashable, orderable, cheap to
store by the million), wrapped in small value types with the arithmetic
the analyses need.

We deliberately do not use :mod:`ipaddress` from the standard library in
the hot paths: the simulator allocates and compares millions of addresses
and the tuned integer representation here is significantly faster, while
the public API still accepts and produces dotted-quad strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

__all__ = ["IPv4Address", "IPv4Prefix", "BlockAllocator", "parse_ipv4"]

_MAX_IPV4 = 0xFFFFFFFF


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer.

    Raises :class:`ValueError` for anything that is not exactly four
    dot-separated decimal octets in range.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


# The distinct addresses in a world are bounded by worldgen, while the
# canonical dataset serialization stringifies them once per result
# field; memoizing by value keeps that a dict probe.
_format_ipv4_cached = lru_cache(maxsize=65536)(_format_ipv4)


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address as an immutable value type."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise ValueError(f"IPv4 value out of range: {self.value}")

    def __hash__(self) -> int:
        # Addresses key the hottest dicts and sets in the simulator
        # (politeness tracking, per-destination stats, attachment
        # lookup); the generated dataclass hash builds a tuple per call.
        return self.value

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(parse_ipv4(text))

    def slash24(self) -> "IPv4Prefix":
        """The /24 prefix containing this address (Table I metric)."""
        return IPv4Prefix(self.value & 0xFFFFFF00, 24)

    def prefix(self, length: int) -> "IPv4Prefix":
        """The prefix of the given length containing this address."""
        return IPv4Prefix(self.value & IPv4Prefix.mask_for(length), length)

    def __str__(self) -> str:
        return _format_ipv4_cached(self.value)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """A CIDR prefix, e.g. ``203.0.113.0/24``."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if self.network & ~self.mask_for(self.length):
            raise ValueError(
                f"host bits set in prefix {_format_ipv4(self.network)}/{self.length}"
            )

    @staticmethod
    def mask_for(length: int) -> int:
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {length}")
        return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4 if length else 0

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        network_text, _, length_text = text.partition("/")
        if not length_text:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(parse_ipv4(network_text), int(length_text))

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, address: IPv4Address) -> bool:
        return (address.value & self.mask_for(self.length)) == self.network

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (use only on small blocks)."""
        for value in range(self.network, self.network + self.size):
            yield IPv4Address(value)

    def nth(self, index: int) -> IPv4Address:
        """The ``index``-th address within the prefix."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"index {index} out of range for /{self.length} prefix"
            )
        return IPv4Address(self.network + index)

    def subprefixes(self, length: int) -> Iterator["IPv4Prefix"]:
        """Iterate the sub-prefixes of the given (longer) length."""
        if length < self.length:
            raise ValueError(
                f"cannot split /{self.length} into shorter /{length}"
            )
        step = 1 << (32 - length)
        for network in range(self.network, self.network + self.size, step):
            yield IPv4Prefix(network, length)

    def __str__(self) -> str:
        return f"{_format_ipv4(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"


class BlockAllocator:
    """Sequentially allocates disjoint CIDR blocks from a parent prefix.

    The world generator carves the simulated Internet's address space
    into per-AS blocks with this allocator; the GeoIP database is then
    simply the record of what was allocated.  Allocation is first-fit and
    deterministic.
    """

    def __init__(self, parent: IPv4Prefix) -> None:
        self._parent = parent
        self._cursor = parent.network
        self._end = parent.network + parent.size

    @property
    def parent(self) -> IPv4Prefix:
        return self._parent

    @property
    def remaining(self) -> int:
        """Addresses not yet handed out."""
        return self._end - self._cursor

    def allocate(self, length: int) -> IPv4Prefix:
        """Allocate the next free block of the given prefix length.

        Blocks are aligned to their natural boundary, so allocation may
        skip addresses.  Raises :class:`MemoryError`-flavoured
        :class:`RuntimeError` when the parent block is exhausted.
        """
        if length < self._parent.length:
            raise ValueError(
                f"cannot allocate /{length} from /{self._parent.length}"
            )
        size = 1 << (32 - length)
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size > self._end:
            raise RuntimeError(
                f"address space exhausted in {self._parent}: "
                f"cannot allocate /{length}"
            )
        self._cursor = aligned + size
        return IPv4Prefix(aligned, length)
