"""Simulated time.

Everything in the reproduction that needs a notion of "now" — DNS cache
TTLs, passive-DNS first/last-seen timestamps, retry-round spacing — reads
it from a :class:`SimulatedClock` instead of the wall clock.  This keeps
every run fully deterministic and lets the world generator synthesize a
decade (2011-2020) of history in milliseconds.

Time is modeled as seconds since the Unix epoch, stored as a float.  A
small set of calendar helpers is provided because the paper summarizes
passive-DNS data per calendar day and per calendar year (e.g., the
``NS_daily`` construction in Figure 5).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

__all__ = [
    "SimulatedClock",
    "SECONDS_PER_DAY",
    "date_to_epoch",
    "epoch_to_date",
    "year_bounds",
    "days_in_year",
]

SECONDS_PER_DAY = 86_400.0

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def date_to_epoch(year: int, month: int = 1, day: int = 1) -> float:
    """Return the epoch timestamp (UTC midnight) of a calendar date."""
    moment = _dt.datetime(year, month, day, tzinfo=_dt.timezone.utc)
    return (moment - _EPOCH).total_seconds()


def epoch_to_date(timestamp: float) -> _dt.date:
    """Return the UTC calendar date containing an epoch timestamp."""
    moment = _EPOCH + _dt.timedelta(seconds=timestamp)
    return moment.date()


def year_bounds(year: int) -> tuple[float, float]:
    """Return ``(start, end)`` epoch timestamps covering a calendar year.

    ``end`` is exclusive: it is the first instant of the following year.
    """
    return date_to_epoch(year), date_to_epoch(year + 1)


def days_in_year(year: int) -> int:
    """Number of calendar days in a year (365 or 366)."""
    return (_dt.date(year + 1, 1, 1) - _dt.date(year, 1, 1)).days


@dataclass
class SimulatedClock:
    """A monotone, manually-advanced clock.

    Parameters
    ----------
    now:
        Initial time, as seconds since the Unix epoch.  Defaults to the
        start of the paper's active-measurement campaign (April 2021).
    """

    now: float = field(default_factory=lambda: date_to_epoch(2021, 4, 1))

    def advance(self, seconds: float) -> float:
        """Move the clock forward and return the new time.

        Raises :class:`ValueError` on negative increments; simulated time
        never flows backwards.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self.now += seconds
        return self.now

    def set(self, timestamp: float) -> float:
        """Jump the clock to an absolute time (must not move backwards)."""
        if timestamp < self.now:
            raise ValueError(
                f"cannot move clock backwards from {self.now} to {timestamp}"
            )
        self.now = timestamp
        return self.now

    def date(self) -> _dt.date:
        """Current UTC calendar date."""
        return epoch_to_date(self.now)
