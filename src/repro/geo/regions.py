"""UN member states and the M49 geoscheme sub-regions.

The paper studies the 193 UN member states and groups results by the
UN's sub-region assignment, with one twist (Tables II/III): the ten
countries contributing the most PDNS records are treated as their own
groups, yielding 22 geoscheme sub-regions + 10 singleton groups = 32
groups (hence percentages like "31 (96.9%)" with denominator 32).

This table is real data (names, ISO codes, sub-regions, as of the
paper's 2021 snapshot); everything synthetic about a country lives in
:mod:`repro.worldgen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

__all__ = [
    "Country",
    "UN_MEMBERS",
    "SUBREGIONS",
    "country_by_iso2",
    "countries_in_subregion",
    "paper_groups",
    "PAPER_GROUP_COUNT",
]


@dataclass(frozen=True)
class Country:
    """A UN member state."""

    name: str
    iso2: str
    subregion: str


def _members() -> Tuple[Country, ...]:
    raw: Sequence[Tuple[str, str, str]] = [
        # --- Africa ---------------------------------------------------
        ("Algeria", "DZ", "Northern Africa"),
        ("Egypt", "EG", "Northern Africa"),
        ("Libya", "LY", "Northern Africa"),
        ("Morocco", "MA", "Northern Africa"),
        ("Sudan", "SD", "Northern Africa"),
        ("Tunisia", "TN", "Northern Africa"),
        ("Burundi", "BI", "Eastern Africa"),
        ("Comoros", "KM", "Eastern Africa"),
        ("Djibouti", "DJ", "Eastern Africa"),
        ("Eritrea", "ER", "Eastern Africa"),
        ("Ethiopia", "ET", "Eastern Africa"),
        ("Kenya", "KE", "Eastern Africa"),
        ("Madagascar", "MG", "Eastern Africa"),
        ("Malawi", "MW", "Eastern Africa"),
        ("Mauritius", "MU", "Eastern Africa"),
        ("Mozambique", "MZ", "Eastern Africa"),
        ("Rwanda", "RW", "Eastern Africa"),
        ("Seychelles", "SC", "Eastern Africa"),
        ("Somalia", "SO", "Eastern Africa"),
        ("South Sudan", "SS", "Eastern Africa"),
        ("Uganda", "UG", "Eastern Africa"),
        ("United Republic of Tanzania", "TZ", "Eastern Africa"),
        ("Zambia", "ZM", "Eastern Africa"),
        ("Zimbabwe", "ZW", "Eastern Africa"),
        ("Angola", "AO", "Middle Africa"),
        ("Cameroon", "CM", "Middle Africa"),
        ("Central African Republic", "CF", "Middle Africa"),
        ("Chad", "TD", "Middle Africa"),
        ("Congo", "CG", "Middle Africa"),
        ("Democratic Republic of the Congo", "CD", "Middle Africa"),
        ("Equatorial Guinea", "GQ", "Middle Africa"),
        ("Gabon", "GA", "Middle Africa"),
        ("Sao Tome and Principe", "ST", "Middle Africa"),
        ("Botswana", "BW", "Southern Africa"),
        ("Eswatini", "SZ", "Southern Africa"),
        ("Lesotho", "LS", "Southern Africa"),
        ("Namibia", "NA", "Southern Africa"),
        ("South Africa", "ZA", "Southern Africa"),
        ("Benin", "BJ", "Western Africa"),
        ("Burkina Faso", "BF", "Western Africa"),
        ("Cabo Verde", "CV", "Western Africa"),
        ("Cote d'Ivoire", "CI", "Western Africa"),
        ("Gambia", "GM", "Western Africa"),
        ("Ghana", "GH", "Western Africa"),
        ("Guinea", "GN", "Western Africa"),
        ("Guinea-Bissau", "GW", "Western Africa"),
        ("Liberia", "LR", "Western Africa"),
        ("Mali", "ML", "Western Africa"),
        ("Mauritania", "MR", "Western Africa"),
        ("Niger", "NE", "Western Africa"),
        ("Nigeria", "NG", "Western Africa"),
        ("Senegal", "SN", "Western Africa"),
        ("Sierra Leone", "SL", "Western Africa"),
        ("Togo", "TG", "Western Africa"),
        # --- Americas -------------------------------------------------
        ("Antigua and Barbuda", "AG", "Caribbean"),
        ("Bahamas", "BS", "Caribbean"),
        ("Barbados", "BB", "Caribbean"),
        ("Cuba", "CU", "Caribbean"),
        ("Dominica", "DM", "Caribbean"),
        ("Dominican Republic", "DO", "Caribbean"),
        ("Grenada", "GD", "Caribbean"),
        ("Haiti", "HT", "Caribbean"),
        ("Jamaica", "JM", "Caribbean"),
        ("Saint Kitts and Nevis", "KN", "Caribbean"),
        ("Saint Lucia", "LC", "Caribbean"),
        ("Saint Vincent and the Grenadines", "VC", "Caribbean"),
        ("Trinidad and Tobago", "TT", "Caribbean"),
        ("Belize", "BZ", "Central America"),
        ("Costa Rica", "CR", "Central America"),
        ("El Salvador", "SV", "Central America"),
        ("Guatemala", "GT", "Central America"),
        ("Honduras", "HN", "Central America"),
        ("Mexico", "MX", "Central America"),
        ("Nicaragua", "NI", "Central America"),
        ("Panama", "PA", "Central America"),
        ("Argentina", "AR", "South America"),
        ("Bolivia", "BO", "South America"),
        ("Brazil", "BR", "South America"),
        ("Chile", "CL", "South America"),
        ("Colombia", "CO", "South America"),
        ("Ecuador", "EC", "South America"),
        ("Guyana", "GY", "South America"),
        ("Paraguay", "PY", "South America"),
        ("Peru", "PE", "South America"),
        ("Suriname", "SR", "South America"),
        ("Uruguay", "UY", "South America"),
        ("Venezuela", "VE", "South America"),
        ("Canada", "CA", "Northern America"),
        ("United States of America", "US", "Northern America"),
        # --- Asia -----------------------------------------------------
        ("Kazakhstan", "KZ", "Central Asia"),
        ("Kyrgyzstan", "KG", "Central Asia"),
        ("Tajikistan", "TJ", "Central Asia"),
        ("Turkmenistan", "TM", "Central Asia"),
        ("Uzbekistan", "UZ", "Central Asia"),
        ("China", "CN", "Eastern Asia"),
        ("Japan", "JP", "Eastern Asia"),
        ("Mongolia", "MN", "Eastern Asia"),
        ("Democratic People's Republic of Korea", "KP", "Eastern Asia"),
        ("Republic of Korea", "KR", "Eastern Asia"),
        ("Brunei Darussalam", "BN", "South-eastern Asia"),
        ("Cambodia", "KH", "South-eastern Asia"),
        ("Indonesia", "ID", "South-eastern Asia"),
        ("Lao People's Democratic Republic", "LA", "South-eastern Asia"),
        ("Malaysia", "MY", "South-eastern Asia"),
        ("Myanmar", "MM", "South-eastern Asia"),
        ("Philippines", "PH", "South-eastern Asia"),
        ("Singapore", "SG", "South-eastern Asia"),
        ("Thailand", "TH", "South-eastern Asia"),
        ("Timor-Leste", "TL", "South-eastern Asia"),
        ("Viet Nam", "VN", "South-eastern Asia"),
        ("Afghanistan", "AF", "Southern Asia"),
        ("Bangladesh", "BD", "Southern Asia"),
        ("Bhutan", "BT", "Southern Asia"),
        ("India", "IN", "Southern Asia"),
        ("Iran", "IR", "Southern Asia"),
        ("Maldives", "MV", "Southern Asia"),
        ("Nepal", "NP", "Southern Asia"),
        ("Pakistan", "PK", "Southern Asia"),
        ("Sri Lanka", "LK", "Southern Asia"),
        ("Armenia", "AM", "Western Asia"),
        ("Azerbaijan", "AZ", "Western Asia"),
        ("Bahrain", "BH", "Western Asia"),
        ("Cyprus", "CY", "Western Asia"),
        ("Georgia", "GE", "Western Asia"),
        ("Iraq", "IQ", "Western Asia"),
        ("Israel", "IL", "Western Asia"),
        ("Jordan", "JO", "Western Asia"),
        ("Kuwait", "KW", "Western Asia"),
        ("Lebanon", "LB", "Western Asia"),
        ("Oman", "OM", "Western Asia"),
        ("Qatar", "QA", "Western Asia"),
        ("Saudi Arabia", "SA", "Western Asia"),
        ("Syrian Arab Republic", "SY", "Western Asia"),
        ("Turkey", "TR", "Western Asia"),
        ("United Arab Emirates", "AE", "Western Asia"),
        ("Yemen", "YE", "Western Asia"),
        # --- Europe ---------------------------------------------------
        ("Belarus", "BY", "Eastern Europe"),
        ("Bulgaria", "BG", "Eastern Europe"),
        ("Czechia", "CZ", "Eastern Europe"),
        ("Hungary", "HU", "Eastern Europe"),
        ("Republic of Moldova", "MD", "Eastern Europe"),
        ("Poland", "PL", "Eastern Europe"),
        ("Romania", "RO", "Eastern Europe"),
        ("Russian Federation", "RU", "Eastern Europe"),
        ("Slovakia", "SK", "Eastern Europe"),
        ("Ukraine", "UA", "Eastern Europe"),
        ("Denmark", "DK", "Northern Europe"),
        ("Estonia", "EE", "Northern Europe"),
        ("Finland", "FI", "Northern Europe"),
        ("Iceland", "IS", "Northern Europe"),
        ("Ireland", "IE", "Northern Europe"),
        ("Latvia", "LV", "Northern Europe"),
        ("Lithuania", "LT", "Northern Europe"),
        ("Norway", "NO", "Northern Europe"),
        ("Sweden", "SE", "Northern Europe"),
        ("United Kingdom", "GB", "Northern Europe"),
        ("Albania", "AL", "Southern Europe"),
        ("Andorra", "AD", "Southern Europe"),
        ("Bosnia and Herzegovina", "BA", "Southern Europe"),
        ("Croatia", "HR", "Southern Europe"),
        ("Greece", "GR", "Southern Europe"),
        ("Italy", "IT", "Southern Europe"),
        ("Malta", "MT", "Southern Europe"),
        ("Montenegro", "ME", "Southern Europe"),
        ("North Macedonia", "MK", "Southern Europe"),
        ("Portugal", "PT", "Southern Europe"),
        ("San Marino", "SM", "Southern Europe"),
        ("Serbia", "RS", "Southern Europe"),
        ("Slovenia", "SI", "Southern Europe"),
        ("Spain", "ES", "Southern Europe"),
        ("Austria", "AT", "Western Europe"),
        ("Belgium", "BE", "Western Europe"),
        ("France", "FR", "Western Europe"),
        ("Germany", "DE", "Western Europe"),
        ("Liechtenstein", "LI", "Western Europe"),
        ("Luxembourg", "LU", "Western Europe"),
        ("Monaco", "MC", "Western Europe"),
        ("Netherlands", "NL", "Western Europe"),
        ("Switzerland", "CH", "Western Europe"),
        # --- Oceania --------------------------------------------------
        ("Australia", "AU", "Australia and New Zealand"),
        ("New Zealand", "NZ", "Australia and New Zealand"),
        ("Fiji", "FJ", "Melanesia"),
        ("Papua New Guinea", "PG", "Melanesia"),
        ("Solomon Islands", "SB", "Melanesia"),
        ("Vanuatu", "VU", "Melanesia"),
        ("Kiribati", "KI", "Micronesia"),
        ("Marshall Islands", "MH", "Micronesia"),
        ("Micronesia (Federated States of)", "FM", "Micronesia"),
        ("Nauru", "NR", "Micronesia"),
        ("Palau", "PW", "Micronesia"),
        ("Samoa", "WS", "Polynesia"),
        ("Tonga", "TO", "Polynesia"),
        ("Tuvalu", "TV", "Polynesia"),
    ]
    return tuple(Country(*entry) for entry in raw)


UN_MEMBERS: Tuple[Country, ...] = _members()

SUBREGIONS: Tuple[str, ...] = tuple(
    sorted({country.subregion for country in UN_MEMBERS})
)

_BY_ISO2: Dict[str, Country] = {c.iso2: c for c in UN_MEMBERS}

# The paper works with 32 groups: the 22 geoscheme sub-regions, with the
# 10 record-heaviest countries promoted to singleton groups.
PAPER_GROUP_COUNT = 32


def country_by_iso2(iso2: str) -> Country:
    try:
        return _BY_ISO2[iso2.upper()]
    except KeyError:
        raise KeyError(f"not a UN member state ISO code: {iso2!r}") from None


def countries_in_subregion(subregion: str) -> Tuple[Country, ...]:
    if subregion not in SUBREGIONS:
        raise KeyError(f"unknown sub-region: {subregion!r}")
    return tuple(c for c in UN_MEMBERS if c.subregion == subregion)


def paper_groups(top_countries: Iterable[str]) -> Mapping[str, str]:
    """Map ISO2 → group label under the paper's Tables II/III scheme.

    ``top_countries`` are the 10 ISO codes with the most PDNS records;
    each becomes its own group, everyone else keeps their sub-region.
    """
    promoted: FrozenSet[str] = frozenset(code.upper() for code in top_countries)
    unknown = promoted - set(_BY_ISO2)
    if unknown:
        raise KeyError(f"not UN member ISO codes: {sorted(unknown)}")
    groups: Dict[str, str] = {}
    for country in UN_MEMBERS:
        if country.iso2 in promoted:
            groups[country.iso2] = country.name
        else:
            groups[country.iso2] = country.subregion
    return groups
