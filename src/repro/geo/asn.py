"""Autonomous-system registry.

Models just enough of the AS ecosystem for the paper's Table I: each AS
has a number, an operating organization, and a home country.  The world
generator allocates one or more ASes per hosting provider and per
national government/ISP, so that "nameservers in different autonomous
systems" is a meaningful property of the synthetic world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["AutonomousSystem", "AsnRegistry"]


@dataclass(frozen=True)
class AutonomousSystem:
    """One autonomous system."""

    asn: int
    organization: str
    country: str  # ISO2 of the operating organization's home country

    def __post_init__(self) -> None:
        if not 1 <= self.asn <= 4_294_967_295:
            raise ValueError(f"ASN out of range: {self.asn}")

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.organization}, {self.country})"


class AsnRegistry:
    """Hands out AS numbers and remembers who got them."""

    def __init__(self, first_asn: int = 64_512) -> None:
        self._next = first_asn
        self._by_asn: Dict[int, AutonomousSystem] = {}

    def allocate(self, organization: str, country: str) -> AutonomousSystem:
        autonomous_system = AutonomousSystem(self._next, organization, country)
        self._by_asn[self._next] = autonomous_system
        self._next += 1
        return autonomous_system

    def get(self, asn: int) -> Optional[AutonomousSystem]:
        return self._by_asn.get(asn)

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._by_asn.values())

    def by_organization(self, organization: str) -> Tuple[AutonomousSystem, ...]:
        return tuple(
            a for a in self._by_asn.values() if a.organization == organization
        )
