"""IP-to-ASN lookup — the MaxMind GeoIP2 ASN stand-in.

The paper resolves every nameserver to IPv4 addresses and then asks, per
domain, how many /24 prefixes and how many ASNs those addresses span
(Table I).  The /24 computation is pure arithmetic
(:meth:`repro.net.address.IPv4Address.slash24`); the ASN side needs a
longest-prefix-match database, which this module provides with a sorted
interval table and binary search — the same query model as a compiled
MaxMind database.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.address import IPv4Address, IPv4Prefix
from .asn import AsnRegistry, AutonomousSystem

__all__ = ["GeoIPDatabase", "GeoIPRecord"]


@dataclass(frozen=True)
class GeoIPRecord:
    """The result of a lookup: the covering block and its AS."""

    prefix: IPv4Prefix
    autonomous_system: AutonomousSystem


class GeoIPDatabase:
    """Maps IPv4 addresses to autonomous systems.

    Blocks must be disjoint (the builder allocates them that way); within
    that constraint, lookup is O(log n) over a frozen, bisect-able table.
    The table is rebuilt lazily after mutation, so bulk loading stays
    linear.
    """

    def __init__(self, registry: Optional[AsnRegistry] = None) -> None:
        self.registry = registry if registry is not None else AsnRegistry()
        self._blocks: List[Tuple[int, int, IPv4Prefix, int]] = []
        self._starts: List[int] = []
        self._dirty = False

    def add_block(self, prefix: IPv4Prefix, autonomous_system: AutonomousSystem) -> None:
        """Assign an address block to an AS."""
        if self.registry.get(autonomous_system.asn) is None:
            raise ValueError(f"{autonomous_system} not in this registry")
        self._blocks.append(
            (
                prefix.network,
                prefix.network + prefix.size - 1,
                prefix,
                autonomous_system.asn,
            )
        )
        self._dirty = True

    def _freeze(self) -> None:
        self._blocks.sort()
        previous_end = -1
        for start, end, prefix, _ in self._blocks:
            if start <= previous_end:
                raise ValueError(f"overlapping GeoIP block at {prefix}")
            previous_end = end
        self._starts = [start for start, _, _, _ in self._blocks]
        self._dirty = False

    def lookup(self, address: IPv4Address) -> Optional[GeoIPRecord]:
        """Return the covering block's record, or None for unknown space."""
        if self._dirty:
            self._freeze()
        index = bisect.bisect_right(self._starts, address.value) - 1
        if index < 0:
            return None
        start, end, prefix, asn = self._blocks[index]
        if address.value > end:
            return None
        autonomous_system = self.registry.get(asn)
        assert autonomous_system is not None
        return GeoIPRecord(prefix, autonomous_system)

    def asn_of(self, address: IPv4Address) -> Optional[int]:
        record = self.lookup(address)
        return record.autonomous_system.asn if record is not None else None

    def organization_of(self, address: IPv4Address) -> Optional[str]:
        record = self.lookup(address)
        return record.autonomous_system.organization if record is not None else None

    def __len__(self) -> int:
        return len(self._blocks)
