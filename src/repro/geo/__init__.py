"""GeoIP/ASN substrate: UN regions, AS registry, IP→ASN database."""

from .asn import AsnRegistry, AutonomousSystem
from .geoip import GeoIPDatabase, GeoIPRecord
from .regions import (
    PAPER_GROUP_COUNT,
    SUBREGIONS,
    UN_MEMBERS,
    Country,
    countries_in_subregion,
    country_by_iso2,
    paper_groups,
)

__all__ = [
    "AsnRegistry",
    "AutonomousSystem",
    "GeoIPDatabase",
    "GeoIPRecord",
    "PAPER_GROUP_COUNT",
    "SUBREGIONS",
    "UN_MEMBERS",
    "Country",
    "countries_in_subregion",
    "country_by_iso2",
    "paper_groups",
]
