"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``headline``   run the study, print headline findings vs the paper
``paperkit``   regenerate every §IV table/figure into an output directory
``audit``      per-country audit (defects, inconsistency, hijack exposure)
``hijackscan`` list registrable nameserver domains with prices
``remediate``  apply the §V-B toolbox and report before/after
``disclose``   responsible-disclosure notifications per operator
``lint``       run reprolint, the AST-based invariant checker
``zonelint``   statically analyze the generated world's delegation graph
``servelint``  static cache-survivability analysis of the serving layer
``oracle``     differentially verify the campaign against zonelint truth
``campaign``   run the probe campaign with chaos/journal/resume controls
``bench``      run the probe benchmark suite (writes BENCH_probe.json)
``longitudinal`` run churn epochs with change-detection-scoped re-probing

Common options: ``--seed`` and ``--scale`` select the deterministic
world; everything else derives from them.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .core.study import GovernmentDnsStudy
from .lint import cli as lint_cli
from .net.chaos import PROFILES as _ORACLE_CHAOS_PROFILES
from .servelint import cli as servelint_cli
from .zonelint import cli as zonelint_cli
from .report.paperkit import ARTIFACTS, export_all
from .report.tables import format_percent, render_table
from .worldgen.config import WorldConfig
from .worldgen.generator import World, WorldGenerator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Comprehensive, Longitudinal Study of "
            "Government DNS Deployment at Global Scale' (DSN 2022)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="world size relative to the paper's 147k targets",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("headline", help="study headline vs the paper")

    kit = sub.add_parser("paperkit", help="export every table/figure")
    kit.add_argument("outdir", help="directory for .txt/.csv artifacts")

    audit = sub.add_parser("audit", help="audit one country")
    audit.add_argument("iso2", help="ISO-3166 alpha-2 code, e.g. TR")

    sub.add_parser("hijackscan", help="registrable nameserver domains")

    sub.add_parser("remediate", help="apply §V-B remedies, re-measure")

    disclose = sub.add_parser(
        "disclose", help="render responsible-disclosure notifications"
    )
    disclose.add_argument(
        "iso2", nargs="?", default=None,
        help="country to render (default: list all affected)",
    )

    lint = sub.add_parser(
        "lint", help="check determinism/error-hygiene/DNS-semantics invariants"
    )
    lint_cli.configure_parser(lint)

    zonelint = sub.add_parser(
        "zonelint",
        help=(
            "statically analyze the generated world's delegation graph "
            "(no simulated queries)"
        ),
    )
    zonelint_cli.configure_parser(zonelint)

    servelint = sub.add_parser(
        "servelint",
        help=(
            "statically analyze cache survivability of the serving "
            "layer under the committed chaos profiles"
        ),
    )
    servelint_cli.configure_parser(servelint)

    oracle = sub.add_parser(
        "oracle",
        help=(
            "differentially verify the active campaign against "
            "zonelint's static ground truth"
        ),
    )
    oracle.add_argument(
        "--modes",
        default="serial,concurrent,chaos",
        help=(
            "comma-separated campaign modes to verify: serial, "
            "concurrent, chaos, sharded (default: serial,concurrent,chaos)"
        ),
    )
    oracle.add_argument(
        "--chaos",
        choices=_ORACLE_CHAOS_PROFILES,
        default="mixed",
        help="chaos profile for the chaos mode (default: mixed)",
    )
    oracle.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the full per-mode report as JSON to PATH",
    )

    campaign = sub.add_parser(
        "campaign",
        help="run the probe campaign with chaos/journal/resume controls",
    )
    campaign.add_argument(
        "--chaos",
        default=None,
        metavar="NAME|list",
        help=(
            "inject a canonical deterministic fault profile "
            "('list' prints the available profiles)"
        ),
    )
    campaign.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="record a checkpoint journal (JSONL) to PATH",
    )
    campaign.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume a killed campaign from its journal (and keep "
            "journaling to the same file); requires the same seed, "
            "scale, and --chaos profile as the original run"
        ),
    )
    campaign.add_argument(
        "--kill-at-event",
        type=int,
        default=None,
        metavar="N",
        help="abort after N scheduler events (kill-at-event harness)",
    )
    campaign.add_argument(
        "--resilience-out",
        default=None,
        metavar="PATH",
        help="write the resilience-counter report as JSON to PATH",
    )
    campaign.add_argument(
        "--shards",
        default=None,
        metavar="N|auto",
        help=(
            "run the campaign across N worker processes (auto = CPU "
            "count); the merged dataset digest is identical for any N"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run a client workload through the caching recursive "
            "serving layer (serve-stale, prefetch, degradation states)"
        ),
    )
    serve.add_argument(
        "--chaos",
        default=None,
        metavar="NAME|list",
        help=(
            "chaos profile to serve under "
            "('list' prints the available profiles)"
        ),
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="simulated workload duration (default: 600)",
    )
    serve.add_argument(
        "--qps",
        type=float,
        default=20.0,
        metavar="RATE",
        help="mean client query rate across all countries (default: 20)",
    )
    serve.add_argument(
        "--no-serve-stale",
        action="store_true",
        help="disable RFC 8767 serve-stale (expired entries are misses)",
    )
    serve.add_argument(
        "--no-prefetch",
        action="store_true",
        help="disable prefetch of hot names approaching TTL expiry",
    )
    serve.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the pre-chaos cache warm phase",
    )
    serve.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write the ServingReport as JSON to PATH",
    )

    bench = sub.add_parser(
        "bench",
        help=(
            "run the probe benchmark suite (serial / concurrent / "
            "sharded) and write BENCH_probe.json"
        ),
    )
    bench.add_argument(
        "--out",
        default="BENCH_probe.json",
        metavar="PATH",
        help="where to write the benchmark report (default: BENCH_probe.json)",
    )
    bench.add_argument(
        "--check",
        default=None,
        metavar="PATH",
        help=(
            "perf-regression gate: compare this run's deterministic "
            "counters and dataset digests against a committed "
            "BENCH_probe.json; exit 1 on any mismatch"
        ),
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the sharded record (default: 4)",
    )
    bench.add_argument(
        "--labels",
        default=(
            "serial,concurrent,sharded,"
            "longitudinal_full,longitudinal_incremental"
        ),
        help="comma-separated configurations to run (default: all five)",
    )
    bench.add_argument(
        "--scales",
        default=None,
        metavar="S1,S2",
        help=(
            "comma-separated scales to bench into one suite file "
            "(default: the top-level --scale; with --check, every "
            "scale committed to the baseline file)"
        ),
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help=(
            "cProfile the probe+analysis phases and emit a top-25 "
            "cumulative hotspot table (text to stdout, JSON next to "
            "--out as <out>.profile.json)"
        ),
    )

    longitudinal = sub.add_parser(
        "longitudinal",
        help=(
            "run a churn-driven epoch campaign with change-detection-"
            "scoped re-probing and print the trend report"
        ),
    )
    longitudinal.add_argument(
        "--epochs",
        type=int,
        default=3,
        metavar="N",
        help="churn epochs to run after the bootstrap (default: 3)",
    )
    longitudinal.add_argument(
        "--audit-rate",
        type=float,
        default=0.01,
        metavar="RATE",
        help=(
            "fraction of the universe re-probed each epoch regardless "
            "of sensor opinion (default: 0.01)"
        ),
    )
    longitudinal.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="probe each epoch through N worker processes",
    )
    longitudinal.add_argument(
        "--full",
        action="store_true",
        help=(
            "naive baseline: re-probe the whole universe every epoch "
            "instead of the sensor-scoped subset"
        ),
    )
    longitudinal.add_argument(
        "--compare-full",
        action="store_true",
        help=(
            "run the incremental campaign AND a from-scratch full "
            "campaign per epoch, asserting digest equality at every "
            "epoch; exit 1 on any divergence (CI smoke mode)"
        ),
    )
    longitudinal.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write the trend report as JSON to PATH",
    )
    return parser


def _make_study(args: argparse.Namespace) -> GovernmentDnsStudy:
    world = WorldGenerator(
        WorldConfig(seed=args.seed, scale=args.scale)
    ).generate()
    return GovernmentDnsStudy(world)


def _cmd_headline(args: argparse.Namespace, out) -> int:
    study = _make_study(args)
    headline = study.headline()
    paper = {
        "targets": "147k",
        "parent_response": "115k",
        "parent_nonempty": "96k",
        "responsive": "—",
        "share_ge2_ns": "98.4%",
        "single_ns_stale_share": "60.1%",
        "defective_any": "29.5%",
        "defective_partial": "25.4%",
        "defective_full": "~4.1%",
        "consistent_share": "76.8%",
    }
    rows = []
    for key, value in headline.items():
        shown = (
            format_percent(value)
            if 0.0 < value <= 1.0
            else f"{int(value):,}"
        )
        rows.append([key, paper.get(key, "—"), shown])
    print(render_table(["Metric", "Paper", "Measured"], rows), file=out)
    return 0


def _cmd_paperkit(args: argparse.Namespace, out) -> int:
    study = _make_study(args)
    written = export_all(study, args.outdir)
    for artifact in ARTIFACTS:
        txt, csv = written[artifact]
        print(f"{artifact}: {txt} {csv}", file=out)
    print(f"{len(written)} artifacts written to {args.outdir}", file=out)
    return 0


def _cmd_audit(args: argparse.Namespace, out) -> int:
    study = _make_study(args)
    iso2 = args.iso2.upper()
    seed = study.seeds().get(iso2)
    if seed is None:
        print(f"no seed domain for {iso2!r}", file=out)
        return 1
    results = [r for r in study.dataset() if r.iso2 == iso2]
    listed = [r for r in results if r.parent_nonempty]
    defects = [
        rep
        for rep in study.delegation().reports().values()
        if rep.iso2 == iso2 and rep.any_defect
    ]
    inconsistent = [
        rep
        for rep in study.consistency().reports().values()
        if rep.iso2 == iso2 and not rep.consistent
    ]
    exposure = study.delegation().hijack_exposure()
    exposed = [
        (dns_domain, victims)
        for dns_domain, victims in exposure.victims_by_dns.items()
        if any(exposure.victim_country.get(v) == iso2 for v in victims)
    ]
    print(f"d_gov: {seed.d_gov} ({'suffix' if seed.is_suffix else 'registered domain'})", file=out)
    print(f"domains probed: {len(results)}, delegated: {len(listed)}", file=out)
    print(f"defective delegations: {len(defects)}", file=out)
    print(f"parent/child disagreements: {len(inconsistent)}", file=out)
    print(f"hijack-exposed nameserver domains: {len(exposed)}", file=out)
    for dns_domain, victims in exposed:
        quote = exposure.available[dns_domain]
        print(f"  {dns_domain} (${quote.price_usd:,.2f}) → {len(victims)} domain(s)", file=out)
    return 0


def _cmd_hijackscan(args: argparse.Namespace, out) -> int:
    study = _make_study(args)
    exposure = study.delegation().hijack_exposure()
    if not exposure.available:
        print("no registrable nameserver domains found", file=out)
        return 0
    rows = [
        [
            str(dns_domain),
            f"${quote.price_usd:,.2f}",
            len(exposure.victims_by_dns.get(dns_domain, [])),
        ]
        for dns_domain, quote in sorted(
            exposure.available.items(), key=lambda kv: kv[1].price_usd or 0
        )
    ]
    print(
        render_table(
            ["Nameserver domain", "Price", "Victims"],
            rows,
            title=(
                f"{len(exposure.available)} registrable d_ns controlling "
                f"{len(exposure.victim_domains)} government domains in "
                f"{len(exposure.countries)} countries"
            ),
        ),
        file=out,
    )
    return 0


def _cmd_remediate(args: argparse.Namespace, out) -> int:
    from .remedies.sweeper import RemediationSweeper

    world = WorldGenerator(
        WorldConfig(seed=args.seed, scale=args.scale)
    ).generate()
    before_study = GovernmentDnsStudy(world)
    before = before_study.headline()
    report = RemediationSweeper(before_study).sweep()
    after = GovernmentDnsStudy(world).headline()
    print(
        render_table(
            ["Metric", "Before", "After"],
            [
                ["any defective", format_percent(before["defective_any"]),
                 format_percent(after["defective_any"])],
                ["fully defective", format_percent(before["defective_full"]),
                 format_percent(after["defective_full"])],
                ["P = C", format_percent(before["consistent_share"]),
                 format_percent(after["consistent_share"])],
            ],
            title=(
                f"{report.total_changes} changes "
                f"({len(report.zombies_deleted)} deletes, "
                f"{len(report.delegations_updated)} updates, "
                f"{len(report.synchronized)} syncs, "
                f"{len(report.locked)} locks)"
            ),
        ),
        file=out,
    )
    return 0


def _cmd_disclose(args: argparse.Namespace, out) -> int:
    from .report.disclosure import build_disclosures, render_package

    study = _make_study(args)
    packages = build_disclosures(study)
    if args.iso2 is None:
        rows = sorted(
            ((p.worst_severity, iso2, len(p.findings)) for iso2, p in packages.items())
        )
        print(
            render_table(
                ["Country", "Findings", "Worst severity"],
                [[iso2, count, severity] for severity, iso2, count in rows],
                title=f"{len(packages)} operators to notify",
            ),
            file=out,
        )
        return 0
    package = packages.get(args.iso2.upper())
    if package is None:
        print(f"no findings for {args.iso2.upper()}", file=out)
        return 1
    print(render_package(package), file=out)
    return 0


def _cmd_lint(args: argparse.Namespace, out) -> int:
    return lint_cli.run(args, out)


def _cmd_zonelint(args: argparse.Namespace, out) -> int:
    return zonelint_cli.run(args, out)


def _cmd_servelint(args: argparse.Namespace, out) -> int:
    return servelint_cli.run(args, out)


def _cmd_oracle(args: argparse.Namespace, out) -> int:
    from .core.oracle import ORACLE_MODES, run_oracle_mode
    from .report.oracle import (
        oracle_json,
        render_oracle_report,
        render_oracle_summary,
    )

    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    unknown = [m for m in modes if m not in ORACLE_MODES]
    if unknown:
        print(
            f"unknown oracle mode(s): {', '.join(unknown)} "
            f"(choose from {', '.join(ORACLE_MODES)})",
            file=out,
        )
        return 2
    reports = []
    for mode in modes:
        report = run_oracle_mode(
            args.seed, args.scale, mode, chaos_profile=args.chaos
        )
        reports.append(report)
        print(render_oracle_report(report), file=out)
    print(render_oracle_summary(reports), file=out)
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(oracle_json(reports))
        print(f"oracle report written to {args.json_out}", file=out)
    return 1 if any(r.unexplained for r in reports) else 0


def _check_chaos_arg(chaos: Optional[str], out) -> Optional[int]:
    """Handle ``--chaos list`` / unknown names; None means proceed."""
    from .net.chaos import PROFILES, describe_profiles

    if chaos is None or chaos in PROFILES:
        return None
    if chaos == "list":
        print("available chaos profiles:", file=out)
        print(describe_profiles(), file=out)
        return 0
    print(
        f"unknown chaos profile {chaos!r}; choose from "
        f"{', '.join(PROFILES)} (or 'list' to describe them)",
        file=out,
    )
    return 2


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from .report.serving import ServingReport
    from .serve.profiles import install_chaos_profile
    from .serve.service import RecursiveService, ServeConfig
    from .serve.workload import (
        ClientWorkload,
        WorkloadConfig,
        targets_from_world,
        workload_digest,
    )

    chaos_status = _check_chaos_arg(args.chaos, out)
    if chaos_status is not None:
        return chaos_status

    world = WorldGenerator(
        WorldConfig(seed=args.seed, scale=args.scale)
    ).generate()
    config = ServeConfig(
        serve_stale=not args.no_serve_stale,
        prefetch=not args.no_prefetch,
    )
    service = RecursiveService(
        world.network,
        world.root_addresses,
        source=world.probe_source,
        config=config,
        seed=args.seed,
    )
    try:
        workload = ClientWorkload(
            targets_from_world(world),
            config=WorkloadConfig(duration=args.duration, mean_qps=args.qps),
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=out)
        return 2
    queries = workload.generate()
    digest = workload_digest(queries)

    warmed = 0
    if not args.no_warm:
        warmed = service.warm(queries)
        # Age the warm cache past its TTLs so the run exercises expiry,
        # prefetch, and (under chaos) the serve-stale path rather than
        # riding a permanently-fresh cache.
        world.clock.advance(config.max_ttl + 1.0)

    if args.chaos is not None:
        install_chaos_profile(world.network, args.chaos, seed=args.seed)

    answers = service.run(queries)
    report = ServingReport.collect(
        answers,
        service,
        seed=args.seed,
        profile=args.chaos,
        duration=args.duration,
        workload_digest=digest,
        chaos_stats=(
            world.network.chaos.stats.as_dict()
            if world.network.chaos is not None
            else None
        ),
    )
    print(
        f"queries served: {len(answers)} "
        f"(warmed {warmed} names, workload digest {digest[:12]}…)",
        file=out,
    )
    print(report.render(), file=out)
    print(f"serving-digest: {report.digest()}", file=out)
    if args.report_out is not None:
        report.write(args.report_out)
        print(f"serving report written to {args.report_out}", file=out)
    return 0


def _cmd_campaign(args: argparse.Namespace, out) -> int:
    from .core.journal import CampaignJournal, dataset_digest
    from .core.probe import ActiveProber
    from .net.events import CampaignAborted
    from .report.resilience import ResilienceReport
    from .serve.profiles import install_chaos_profile

    chaos_status = _check_chaos_arg(args.chaos, out)
    if chaos_status is not None:
        return chaos_status

    if args.journal and args.resume:
        print(
            "--journal and --resume are mutually exclusive "
            "(--resume keeps journaling to the same file)",
            file=out,
        )
        return 2

    shards: Optional[int] = None
    if args.shards is not None:
        if args.shards == "auto":
            shards = os.cpu_count() or 1
        else:
            try:
                shards = int(args.shards)
            except ValueError:
                print(
                    f"--shards must be an integer or 'auto', "
                    f"got {args.shards!r}",
                    file=out,
                )
                return 2
        if shards < 1:
            print(f"--shards must be >= 1, got {shards}", file=out)
            return 2
        if args.kill_at_event is not None:
            print(
                "--kill-at-event needs the single-process engine (its "
                "event count is tied to one scheduler); drop --shards",
                file=out,
            )
            return 2

    world = WorldGenerator(
        WorldConfig(seed=args.seed, scale=args.scale)
    ).generate()
    study = GovernmentDnsStudy(world)
    # Seed selection runs its own queries; compute targets before
    # installing chaos or arming the kill switch so both anchor at the
    # campaign proper.
    targets = study.targets()

    if args.chaos is not None:
        install_chaos_profile(world.network, args.chaos, seed=args.seed)

    if shards is not None:
        from .core.probe import ProbeConfig
        from .core.shard import ProcessCampaignRunner, government_suffixes

        runner = ProcessCampaignRunner(
            world,
            targets,
            ProbeConfig(),
            shards=shards,
            suffixes=government_suffixes(study.seeds().values()),
            journal_path=args.resume or args.journal,
        )
        try:
            dataset = runner.run()
        except ValueError as error:
            print(f"error: {error}", file=out)
            return 2
        print(f"domains probed: {len(dataset)}", file=out)
        print(f"dataset-digest: {dataset_digest(dataset)}", file=out)
        for stats in runner.shard_stats:
            print(
                f"shard {stats.shard}: targets={stats.targets} "
                f"queries={stats.queries_sent} "
                f"(warm={stats.warm_queries}) "
                f"net={stats.network_queries} "
                f"sim={stats.simulated_seconds:.1f}s",
                file=out,
            )
        return 0

    journal: Optional[CampaignJournal] = None
    try:
        if args.resume is not None:
            journal = CampaignJournal.resume(args.resume)
        elif args.journal is not None:
            journal = CampaignJournal.create(args.journal)
    except ValueError as error:
        # A shard manifest (or a corrupt journal) is a user error, not
        # a crash.
        print(f"error: {error}", file=out)
        return 2

    prober = ActiveProber(
        world.network,
        world.root_addresses,
        world.probe_source,
        journal=journal,
    )
    if args.kill_at_event is not None:
        # Relative to events already fired by world generation and seed
        # selection, so --kill-at-event counts campaign events only.
        world.network.events.abort_after = (
            world.network.events.fired + args.kill_at_event
        )
    try:
        dataset = prober.probe_all(targets)
    except ValueError as error:
        # Journal/campaign mismatch and similar refusals are user
        # errors, not crashes.
        print(f"error: {error}", file=out)
        return 2
    except CampaignAborted as aborted:
        print(f"campaign killed: {aborted}", file=out)
        if journal is not None:
            print(
                f"journal preserved: resume with --resume {journal.path}",
                file=out,
            )
        return 0

    print(f"domains probed: {len(dataset)}", file=out)
    print(f"dataset-digest: {dataset_digest(dataset)}", file=out)
    report = ResilienceReport.collect(prober, dataset, journal)
    print(report.render(), file=out)
    if args.resilience_out is not None:
        report.write(args.resilience_out)
        print(f"resilience report written to {args.resilience_out}", file=out)
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    from .report.bench import (
        check_probe_bench,
        collect_hotspots,
        render_hotspot_table,
        run_probe_suite,
    )
    from .report.export import write_json
    from .report.perf import load_report_payload, scale_payloads

    labels = tuple(
        label.strip() for label in args.labels.split(",") if label.strip()
    )
    if args.scales is not None:
        scales = tuple(
            float(scale.strip())
            for scale in args.scales.split(",")
            if scale.strip()
        )
    elif args.check is not None:
        # Gate mode defaults to every scale the baseline file commits
        # to, so "check" always means "check everything committed".
        scales = tuple(
            sorted(scale_payloads(load_report_payload(args.check)))
        )
    else:
        scales = (args.scale,)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    suite = run_probe_suite(
        args.seed, scales, shards=args.shards, labels=labels,
        profiler=profiler,
    )
    suite.write(args.out)
    print(f"benchmark suite written to {args.out}", file=out)
    for scale in sorted(suite.reports):
        report = suite.reports[scale]
        print(f"scale {scale}:", file=out)
        for record in report.records:
            phases = record.phases or {}
            decomposition = " ".join(
                f"{name}={seconds:.2f}s"
                for name, seconds in sorted(phases.items())
            )
            print(
                f"  {record.label:<12} queries={record.queries_sent:<7} "
                f"net={record.network_queries:<7} "
                f"wall={record.wall_seconds:.2f}s "
                f"[{decomposition}] digest={record.dataset_digest[:12]}…",
                file=out,
            )

    if profiler is not None:
        hotspots = collect_hotspots(profiler)
        table = render_hotspot_table(hotspots)
        profile_path = f"{args.out}.profile.json"
        write_json(
            profile_path,
            {
                "seed": args.seed,
                "scales": list(scales),
                "labels": list(labels),
                "phases_profiled": ["probe", "merge", "analysis"],
                "hotspots": hotspots,
            },
        )
        with open(f"{args.out}.profile.txt", "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(
            f"hotspot profile (top {len(hotspots)} by cumulative time, "
            f"probe+merge+analysis phases) written to {profile_path}:",
            file=out,
        )
        print(table, file=out)

    if args.check is not None:
        violations = check_probe_bench(suite, args.check)
        if violations:
            print(f"perf gate FAILED against {args.check}:", file=out)
            for violation in violations:
                print(f"  {violation}", file=out)
            return 1
        print(f"perf gate passed against {args.check}", file=out)
    return 0


def _cmd_longitudinal(args: argparse.Namespace, out) -> int:
    from .core.epoch import EpochRunner
    from .report.trend import TrendReport

    if args.full and args.compare_full:
        print(
            "error: --full and --compare-full are mutually exclusive",
            file=out,
        )
        return 2
    world = WorldGenerator(
        WorldConfig(seed=args.seed, scale=args.scale)
    ).generate()
    runner = EpochRunner(
        world,
        incremental=not args.full,
        audit_rate=args.audit_rate,
        shards=args.shards,
    )
    runner.run(args.epochs)
    report = TrendReport.from_runner(runner)
    print(report.render(), file=out)
    if args.report_out is not None:
        report.write(args.report_out)
        print(f"trend report written to {args.report_out}", file=out)

    if args.compare_full:
        # The equivalence certificate: every epoch's folded delta
        # dataset must hash identically to a from-scratch full campaign
        # over that epoch's world.
        from .core.journal import dataset_digest
        from .core.probe import ActiveProber
        from .worldgen.churn import world_at_epoch

        divergent = False
        for epoch in range(args.epochs + 1):
            fresh = world_at_epoch(args.seed, args.scale, epoch)
            study = GovernmentDnsStudy(fresh)
            prober = ActiveProber(
                fresh.network, fresh.root_addresses, fresh.probe_source
            )
            full_digest = dataset_digest(prober.probe_all(study.targets()))
            incremental_digest = runner.dataset.epoch_digest(epoch)
            if full_digest == incremental_digest:
                print(
                    f"epoch {epoch}: incremental digest matches full "
                    f"campaign ({full_digest[:12]}…)",
                    file=out,
                )
            else:
                divergent = True
                print(
                    f"epoch {epoch}: DIGEST DIVERGENCE incremental="
                    f"{incremental_digest} full={full_digest}",
                    file=out,
                )
        if divergent:
            print("incremental-vs-full verification FAILED", file=out)
            return 1
        print(
            f"incremental-vs-full verification passed for all "
            f"{args.epochs + 1} epochs",
            file=out,
        )
    return 0


_COMMANDS = {
    "headline": _cmd_headline,
    "paperkit": _cmd_paperkit,
    "audit": _cmd_audit,
    "hijackscan": _cmd_hijackscan,
    "remediate": _cmd_remediate,
    "disclose": _cmd_disclose,
    "lint": _cmd_lint,
    "zonelint": _cmd_zonelint,
    "servelint": _cmd_servelint,
    "oracle": _cmd_oracle,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "longitudinal": _cmd_longitudinal,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out if out is not None else sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
