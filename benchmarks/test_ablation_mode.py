"""Ablation: yearly NS_daily summarization — mode vs min vs max.

The paper summarizes each domain-year as the *mode* of the daily
nameserver count (Figure 5).  ``min`` classifies any domain that
briefly dropped to one nameserver as d_1NS (over-counting); ``max``
hides domains that ran on one nameserver most of the year but briefly
added a second (under-counting).  The mode tracks the dominant state.
"""

from repro.core.replication import PdnsReplicationAnalysis
from repro.report.tables import render_table

from conftest import paper_line


def test_ablation_year_summary(benchmark, bench_study):
    def run_all():
        counts = {}
        for how in ("min", "mode", "max"):
            analysis = PdnsReplicationAnalysis(
                bench_study.world.pdns,
                bench_study.seeds(),
                year_summary=how,
            )
            counts[how] = {
                year: len(analysis.single_ns_domains(year))
                for year in (2011, 2020)
            }
        return counts

    counts = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["Summary", "d_1NS 2011", "d_1NS 2020"],
            [
                [how, counts[how][2011], counts[how][2020]]
                for how in ("min", "mode", "max")
            ],
            title="Ablation — NS_daily yearly summarization",
        )
    )
    print(paper_line("ordering", "min ≥ mode ≥ max",
                     " / ".join(str(counts[h][2020]) for h in ("min", "mode", "max"))))

    for year in (2011, 2020):
        assert counts["min"][year] >= counts["mode"][year] >= counts["max"][year]
    # The extremes genuinely diverge — the choice matters.
    assert counts["min"][2020] > counts["max"][2020]
