"""Probe-engine perf baseline: serial blocking vs concurrent + cached.

Runs the full probe campaign twice on identically-seeded worlds:

* **serial** — ``max_in_flight=1``, zone-cut caching off: the
  historical strictly-blocking engine (and still the bit-exact
  reference configuration);
* **concurrent** — the default engine: a 64-deep in-flight window over
  the discrete-event scheduler plus the shared zone-cut cache.

Both runs are timed and written to ``BENCH_probe.json`` (one record per
configuration plus baseline-relative reduction ratios) so CI archives
the perf baseline alongside the figure benches.

What the ratios can and cannot show at this scale: the per-IP sweep is
irreducible measurement traffic (every address must be queried per
target), so query-count reduction is bounded by the walk share — about
1.7x at scale 0.05 — while *active* campaign time (simulated seconds
excluding the fixed inter-round wait) collapses by an order of
magnitude because concurrent timeout waits overlap.  EXPERIMENTS.md
works through the decomposition.
"""

from __future__ import annotations

import os
import time

from repro.core.probe import ActiveProber, ProbeConfig
from repro.core.study import GovernmentDnsStudy
from repro.report.perf import PerfRecord, PerfReport
from repro.worldgen import WorldConfig, WorldGenerator

from conftest import BENCH_SCALE, BENCH_SEED

BENCH_OUTPUT = os.environ.get("REPRO_BENCH_PROBE_JSON", "BENCH_probe.json")

# The inter-round wait is methodology, not engine cost: subtract it to
# compare what the engine actually controls.
_CONFIGS = {
    "serial": dict(max_in_flight=1, zone_cut_caching=False),
    "concurrent": dict(max_in_flight=64, zone_cut_caching=True),
}


def _run_campaign(label: str) -> PerfRecord:
    config = ProbeConfig(**_CONFIGS[label])
    world = WorldGenerator(
        WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    ).generate()
    study = GovernmentDnsStudy(world)
    targets = study.targets()
    prober = ActiveProber(
        world.network,
        world.root_addresses,
        world.probe_source,
        config=config,
    )
    sim_start = world.clock.now
    wall_start = time.perf_counter()
    dataset = prober.probe_all(targets)
    wall = time.perf_counter() - wall_start
    simulated = world.clock.now - sim_start
    retried = any(r.retried for r in dataset.results.values())
    waits = config.retry_interval_days * 86_400 if retried else 0.0
    return PerfRecord(
        label=label,
        max_in_flight=config.max_in_flight,
        zone_cut_caching=config.zone_cut_caching,
        targets=len(targets),
        wall_seconds=round(wall, 3),
        simulated_seconds=round(simulated, 3),
        active_seconds=round(simulated - waits, 3),
        queries_sent=prober.queries_sent,
        network_queries=world.network.stats.queries_sent,
        timeouts=world.network.stats.timeouts,
        responsive_domains=sum(
            1 for r in dataset.results.values() if r.responsive
        ),
    )


def test_perf_probe_engine(benchmark):
    report = PerfReport(scale=BENCH_SCALE, seed=BENCH_SEED)
    report.add(_run_campaign("serial"), baseline=True)

    concurrent = benchmark.pedantic(
        lambda: _run_campaign("concurrent"), rounds=1, iterations=1
    )
    report.add(concurrent)
    report.write(BENCH_OUTPUT)

    serial = report.get("serial")
    reductions = report.reductions("concurrent")
    print()
    print(f"  perf baseline written to {BENCH_OUTPUT}")
    for record in report.records:
        print(
            f"  {record.label:<12} queries={record.queries_sent:<7}"
            f" net={record.network_queries:<7}"
            f" active_sim={record.active_seconds:>9.1f}s"
            f" wall={record.wall_seconds:.2f}s"
        )
    print(
        "  reductions vs serial: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(reductions.items()))
    )

    # Both engines must observe the same world: equal target counts and
    # equal responsive-domain counts (caching and concurrency change
    # cost, not findings).
    assert concurrent.targets == serial.targets
    assert concurrent.responsive_domains == serial.responsive_domains

    # The engine wins that hold at bench scale (see EXPERIMENTS.md for
    # why query reduction is bounded by the irreducible sweep share).
    assert reductions["queries_sent"] >= 1.5
    assert reductions["network_queries"] >= 1.5
    assert reductions["active_seconds"] >= 5.0
    assert reductions["wall_seconds"] >= 1.0
