"""Probe-engine perf baseline: serial vs concurrent vs sharded.

Thin pytest wrapper around :mod:`repro.report.bench` — the same runner
``repro bench`` invokes — so CI, pytest-benchmark, and humans measure
exactly the same campaign.  Three records per run:

* **serial** — ``max_in_flight=1``, zone-cut caching off: the
  historical strictly-blocking engine (and still the bit-exact
  reference configuration);
* **concurrent** — the default engine: a 64-deep in-flight window over
  the discrete-event scheduler plus the warm-then-frozen zone-cut
  cache;
* **sharded** — the concurrent engine partitioned across 4 worker
  processes with a deterministic merge.

What the ratios can and cannot show at this scale: the per-IP sweep is
irreducible measurement traffic (every address must be queried per
target), so query-count reduction is bounded by the walk share, while
*active* campaign time (simulated seconds excluding the fixed
inter-round wait) collapses by an order of magnitude because
concurrent timeout waits overlap.  Sharded wall-clock reduction needs
real cores: the digest assertions hold everywhere, the speedup
assertion is gated on CPU count (a 1-core runner pays fork overhead
for no parallelism).  EXPERIMENTS.md works through the decomposition.

The committed ``BENCH_probe.json`` (a multi-scale suite) is produced
by ``repro bench --scales 0.05,0.15``; this wrapper writes its fresh
single-scale suite elsewhere so a local pytest run cannot clobber the
committed two-scale baseline.

``test_perf_smoke_columnar_analysis`` is the ISSUE-7 regression smoke:
against the committed pre-columnar record
(``benchmarks/BENCH_pre_pr.json``) the deterministic counters must be
byte-identical — the wire kernels and columnar store changed *cost*,
never *findings* — and the analysis phase must run at least 2x faster.
Wall-clock assertions are advisory on small runners (noise dominates
below 4 cores); the counter equalities are asserted everywhere.
"""

from __future__ import annotations

import json
import os

from repro.report.bench import (
    DEFAULT_SHARDS,
    run_probe_bench,
    run_probe_record,
)
from repro.report.perf import GATED_FIELDS, PerfSuite

from conftest import BENCH_SCALE, BENCH_SEED

BENCH_OUTPUT = os.environ.get(
    "REPRO_BENCH_PROBE_JSON", "BENCH_probe.pytest.json"
)
PRE_PR_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_pre_pr.json"
)

_CACHE = {}


def baseline_report():
    """Serial + concurrent records at the bench scale, run once."""
    if "report" not in _CACHE:
        _CACHE["report"] = run_probe_bench(
            BENCH_SEED, BENCH_SCALE, labels=("serial", "concurrent")
        )
    return _CACHE["report"]


def test_perf_probe_engine(benchmark):
    report = baseline_report()
    sharded = benchmark.pedantic(
        run_probe_record,
        args=("sharded", BENCH_SEED, BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    report.add(sharded)
    suite = PerfSuite(seed=BENCH_SEED)
    suite.add(report)
    suite.write(BENCH_OUTPUT)

    serial = report.get("serial")
    concurrent = report.get("concurrent")
    print()
    print(f"  perf suite written to {BENCH_OUTPUT}")
    for record in report.records:
        phases = record.phases or {}
        decomposition = " ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(phases.items())
        )
        print(
            f"  {record.label:<12} queries={record.queries_sent:<7}"
            f" net={record.network_queries:<7}"
            f" active_sim={record.active_seconds:>9.1f}s"
            f" wall={record.wall_seconds:.2f}s [{decomposition}]"
        )
    reductions = report.reductions("concurrent")
    print(
        "  reductions vs serial: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(reductions.items()))
    )

    # Every engine must observe the same world: equal target counts and
    # equal responsive-domain counts (caching, concurrency, and
    # sharding change cost, not findings).
    assert concurrent.targets == serial.targets
    assert sharded.targets == serial.targets
    assert concurrent.responsive_domains == serial.responsive_domains
    assert sharded.responsive_domains == serial.responsive_domains

    # The sharded determinism contract: byte-identical dataset digest
    # vs the in-process concurrent engine, at the committed K.
    assert sharded.shards == DEFAULT_SHARDS
    assert sharded.dataset_digest == concurrent.dataset_digest
    assert sharded.phases is not None and "merge" in sharded.phases

    # The engine wins that hold at bench scale (see EXPERIMENTS.md for
    # why query reduction is bounded by the irreducible sweep share).
    assert reductions["queries_sent"] >= 1.5
    assert reductions["network_queries"] >= 1.5
    assert reductions["active_seconds"] >= 5.0

    # Wall-clock assertions need real cores; a 1-core CI runner is
    # noisy enough to flip the serial/concurrent ordering (their probe
    # walls are within ~25% of each other), and sharding pays fork +
    # serialization overhead for no parallelism there.
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert reductions["wall_seconds"] >= 1.0
        assert sharded.wall_seconds < concurrent.wall_seconds


def test_perf_smoke_columnar_analysis():
    """ISSUE-7 acceptance: counters frozen, analysis >= 2x faster."""
    with open(PRE_PR_BASELINE, encoding="utf-8") as fh:
        pre = json.load(fh)
    pre_records = pre["scales"][str(BENCH_SCALE)]["records"]
    report = baseline_report()

    # Deterministic counters must match the pre-optimization record
    # exactly: the packed kernels and the columnar store are pure
    # representation changes.
    for label in ("serial", "concurrent"):
        record = report.get(label)
        for fieldname in GATED_FIELDS:
            assert getattr(record, fieldname) == pre_records[label][
                fieldname
            ], f"{label}.{fieldname} drifted from BENCH_pre_pr.json"

    # Wall comparison, conservatively: best committed pre-PR analysis
    # vs *worst* fresh analysis across the two in-process records.
    pre_analysis = min(
        rec["phases"]["analysis"] for rec in pre_records.values()
    )
    new_analysis = max(
        report.get(label).phases["analysis"]
        for label in ("serial", "concurrent")
    )
    pre_probe = pre_records["concurrent"]["phases"]["probe"]
    new_probe = report.get("concurrent").phases["probe"]
    speedup = pre_analysis / new_analysis if new_analysis else float("inf")
    print()
    print(
        f"  analysis: {pre_analysis:.3f}s committed -> "
        f"{new_analysis:.3f}s ({speedup:.2f}x)"
    )
    print(f"  probe (concurrent): {pre_probe:.3f}s committed -> "
          f"{new_probe:.3f}s")
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert speedup >= 2.0, (
            f"columnar analysis regressed: {new_analysis:.3f}s vs "
            f"committed {pre_analysis:.3f}s"
        )
        assert new_probe < pre_probe
    else:
        print(f"  (advisory only: {cores} core(s) — wall too noisy)")
