"""Probe-engine perf baseline: serial vs concurrent vs sharded.

Thin pytest wrapper around :mod:`repro.report.bench` — the same runner
``repro bench`` invokes — so CI, pytest-benchmark, and humans measure
exactly the same campaign.  Three records per run:

* **serial** — ``max_in_flight=1``, zone-cut caching off: the
  historical strictly-blocking engine (and still the bit-exact
  reference configuration);
* **concurrent** — the default engine: a 64-deep in-flight window over
  the discrete-event scheduler plus the warm-then-frozen zone-cut
  cache;
* **sharded** — the concurrent engine partitioned across 4 worker
  processes with a deterministic merge.

What the ratios can and cannot show at this scale: the per-IP sweep is
irreducible measurement traffic (every address must be queried per
target), so query-count reduction is bounded by the walk share, while
*active* campaign time (simulated seconds excluding the fixed
inter-round wait) collapses by an order of magnitude because
concurrent timeout waits overlap.  Sharded wall-clock reduction needs
real cores: the digest assertions hold everywhere, the speedup
assertion is gated on CPU count (a 1-core runner pays fork overhead
for no parallelism).  EXPERIMENTS.md works through the decomposition.
"""

from __future__ import annotations

import os

from repro.report.bench import (
    DEFAULT_SHARDS,
    run_probe_bench,
    run_probe_record,
)

from conftest import BENCH_SCALE, BENCH_SEED

BENCH_OUTPUT = os.environ.get("REPRO_BENCH_PROBE_JSON", "BENCH_probe.json")


def test_perf_probe_engine(benchmark):
    report = run_probe_bench(
        BENCH_SEED, BENCH_SCALE, labels=("serial", "concurrent")
    )
    sharded = benchmark.pedantic(
        run_probe_record,
        args=("sharded", BENCH_SEED, BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    report.add(sharded)
    report.write(BENCH_OUTPUT)

    serial = report.get("serial")
    concurrent = report.get("concurrent")
    print()
    print(f"  perf baseline written to {BENCH_OUTPUT}")
    for record in report.records:
        phases = record.phases or {}
        decomposition = " ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(phases.items())
        )
        print(
            f"  {record.label:<12} queries={record.queries_sent:<7}"
            f" net={record.network_queries:<7}"
            f" active_sim={record.active_seconds:>9.1f}s"
            f" wall={record.wall_seconds:.2f}s [{decomposition}]"
        )
    reductions = report.reductions("concurrent")
    print(
        "  reductions vs serial: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(reductions.items()))
    )

    # Every engine must observe the same world: equal target counts and
    # equal responsive-domain counts (caching, concurrency, and
    # sharding change cost, not findings).
    assert concurrent.targets == serial.targets
    assert sharded.targets == serial.targets
    assert concurrent.responsive_domains == serial.responsive_domains
    assert sharded.responsive_domains == serial.responsive_domains

    # The sharded determinism contract: byte-identical dataset digest
    # vs the in-process concurrent engine, at the committed K.
    assert sharded.shards == DEFAULT_SHARDS
    assert sharded.dataset_digest == concurrent.dataset_digest
    assert sharded.phases is not None and "merge" in sharded.phases

    # The engine wins that hold at bench scale (see EXPERIMENTS.md for
    # why query reduction is bounded by the irreducible sweep share).
    assert reductions["queries_sent"] >= 1.5
    assert reductions["network_queries"] >= 1.5
    assert reductions["active_seconds"] >= 5.0
    assert reductions["wall_seconds"] >= 1.0

    # True parallel wall-clock reduction needs real cores; a 1-core CI
    # runner pays fork + serialization overhead for no parallelism, so
    # the speedup assertion is advisory below 4 cores.
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert sharded.wall_seconds < concurrent.wall_seconds
