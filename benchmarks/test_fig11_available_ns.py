"""Figure 11: registrable (hijackable) nameserver domains by country.

Paper shape: 805 registrable d_ns serving 1,121 domains across 49
countries; most exposed domains are entirely silent (stale), and
victims cluster within single d_gov (shared dead providers).
"""

from repro.core.delegation import DelegationAnalysis
from repro.report.figures import Distribution, render_bars

from conftest import BENCH_SCALE, paper_line


def test_fig11_available_ns(benchmark, bench_study):
    def compute():
        analysis = DelegationAnalysis(
            bench_study.dataset(),
            registrar=bench_study.world.registrar,
            government_suffixes={
                iso2: seed.d_gov
                for iso2, seed in bench_study.seeds().items()
            },
        )
        exposure = analysis.hijack_exposure()
        return exposure, analysis.figure11_by_country(exposure)

    exposure, by_country = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(
        render_bars(
            Distribution.from_mapping(
                "victims", {k: float(v) for k, (v, _) in by_country.items()}
            ).top(15),
            title="Figure 11 — hijack-exposed domains by country",
            value_format="{:.0f}",
        )
    )
    scaled = lambda n: round(n * BENCH_SCALE)
    print(paper_line("registrable d_ns", f"805 (≈{scaled(805)} at this scale)",
                     str(len(exposure.available))))
    print(paper_line("victim domains", f"1,121 (≈{scaled(1121)})",
                     str(len(exposure.victim_domains))))
    print(paper_line("countries affected", "49", str(len(exposure.countries))))
    print(paper_line("silent (fully stale) victims", "625 of 1,121 (56%)",
                     f"{len(exposure.silent_victims)} of {len(exposure.victim_domains)}"))

    victims = len(exposure.victim_domains)
    dns_count = len(exposure.available)
    assert dns_count > 0 and victims > 0
    # Same order of magnitude as the paper, scaled.
    assert scaled(805) / 4 <= dns_count <= scaled(805) * 4
    assert scaled(1121) / 4 <= victims <= scaled(1121) * 4
    # Reuse: more victims than registrable domains (shared dead hosts).
    assert victims >= dns_count
    assert 1.0 <= victims / dns_count <= 3.0  # paper: 1.39
    # A meaningful share of victims never answered at all.
    assert len(exposure.silent_victims) / victims > 0.15
    assert len(exposure.countries) >= 10
