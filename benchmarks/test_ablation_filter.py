"""Ablation: the 7-day PDNS stability filter (paper §III-C).

Without the filter, sub-week transient records (cache echoes of
corrected misconfigurations, DDoS-protection flips, expirations)
inflate the longitudinal domain counts; a 30-day filter starts eating
legitimate short-lived deployments.  The paper's 7 days — the largest
default resolver TTL — sits between.
"""

from repro.core.replication import PdnsReplicationAnalysis
from repro.report.tables import render_table

from conftest import paper_line


def test_ablation_stability_filter(benchmark, bench_study):
    def run_all():
        results = {}
        for days in (0.0, 7.0, 30.0):
            analysis = PdnsReplicationAnalysis(
                bench_study.world.pdns,
                bench_study.seeds(),
                stability_days=days,
            )
            fig2 = analysis.figure2()
            results[days] = {
                "domains_2020": fig2[2020][0],
                "d1ns_2020": len(analysis.single_ns_domains(2020)),
            }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["Filter (days)", "domains 2020", "d_1NS 2020"],
            [
                [days, row["domains_2020"], row["d1ns_2020"]]
                for days, row in sorted(results.items())
            ],
            title="Ablation — PDNS stability threshold",
        )
    )
    print(paper_line("paper's choice", "7 days (max resolver TTL)",
                     f"unfiltered inflates domains by "
                     f"{results[0.0]['domains_2020'] - results[7.0]['domains_2020']}"))

    # No filter keeps strictly more (noise) records; a month-long filter
    # keeps no more than the 7-day one.
    assert results[0.0]["domains_2020"] > results[7.0]["domains_2020"]
    assert results[30.0]["domains_2020"] <= results[7.0]["domains_2020"]
    # The noise being removed is NS churn, which perturbs d_1NS counts.
    assert results[0.0]["d1ns_2020"] != results[7.0]["d1ns_2020"] or (
        results[0.0]["domains_2020"] > results[7.0]["domains_2020"]
    )
