"""Figure 13: parent/child NS-set consistency taxonomy.

Paper shape: 76.8% of responsive domains have P = C; level-2 domains
are far more consistent (93.5%) than deeper ones (≤77%); 40.9% of
inconsistent domains also carry a partial defect; and a handful of
non-defective inconsistent cases dangle from registrable provider
domains (13 d_ns / 26 victims, minimum $300).
"""

from repro.core.consistency import ConsistencyAnalysis, ConsistencyClass
from repro.core.delegation import DelegationAnalysis
from repro.report.tables import format_percent, render_table

from conftest import paper_line


def test_fig13_consistency(benchmark, bench_study):
    suffixes = {
        iso2: seed.d_gov for iso2, seed in bench_study.seeds().items()
    }

    def compute():
        consistency = ConsistencyAnalysis(
            bench_study.dataset(),
            registrar=bench_study.world.registrar,
            government_suffixes=suffixes,
        )
        delegation = DelegationAnalysis(
            bench_study.dataset(),
            registrar=bench_study.world.registrar,
            government_suffixes=suffixes,
        )
        return (
            consistency.figure13(),
            consistency.consistency_by_level(),
            consistency.share_inconsistent_with_partial_defect(delegation),
            consistency.dangling_scan(delegation),
        )

    fig13, by_level, defect_share, dangling = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    print()
    print(
        render_table(
            ["Class", "Share"],
            [[verdict, format_percent(share)] for verdict, share in fig13.items()],
            title="Figure 13 — parent/child consistency",
        )
    )
    print(paper_line("P = C", "76.8%", format_percent(fig13[ConsistencyClass.EQUAL])))
    print(paper_line("inconsistent with partial defect", "40.9%",
                     format_percent(defect_share)))
    print(paper_line("dangling-but-responsive d_ns", "13 d_ns / 26 domains / ≥$300",
                     f"{len(dangling)} d_ns / "
                     f"{sum(len(v[1]) for v in dangling.values())} domains"))

    assert 0.68 < fig13[ConsistencyClass.EQUAL] < 0.85
    assert sum(fig13.values()) > 0.999
    # Every inconsistency class is represented.
    for verdict in ConsistencyClass.ALL:
        assert fig13[verdict] >= 0.0
    assert fig13[ConsistencyClass.C_SUBSET_P] > 0.01
    assert fig13[ConsistencyClass.P_SUBSET_C] > 0.01
    # Deeper domains disagree more than second-level ones on average.
    if 2 in by_level and 3 in by_level:
        assert by_level[2] >= by_level[3] - 0.05
    assert 0.15 < defect_share < 0.70
    # The injected dangling-but-responsive cases surface, priced ≥ $300.
    assert dangling
    assert all(quote.price_usd >= 300 for quote, _ in dangling.values())
