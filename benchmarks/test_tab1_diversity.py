"""Table I: IP / /24-prefix / ASN diversity of multi-NS deployments.

Paper shape (total row): 89.8% multi-IP, 71.5% multi-/24, 32.9%
multi-ASN; China leads diversity, Thailand is the single-IP outlier,
and every column is monotone (IP ≥ /24 ≥ ASN).
"""

from repro.core.diversity import DiversityAnalysis
from repro.report.tables import format_percent, render_table

from conftest import paper_line


def test_tab1_diversity(benchmark, bench_study):
    def compute():
        analysis = DiversityAnalysis(
            bench_study.dataset(), bench_study.world.geoip
        )
        return analysis.table1()

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["", "Domains", "|IP|>1", "|/24|>1", "|ASN|>1"],
            [
                [
                    row.label,
                    row.domains,
                    format_percent(row.multi_ip_share),
                    format_percent(row.multi_prefix_share),
                    format_percent(row.multi_asn_share),
                ]
                for row in rows
            ],
            title="Table I — nameserver address diversity",
        )
    )
    total = rows[0]
    print(paper_line("total row", "89.8% / 71.5% / 32.9%",
                     f"{total.multi_ip_share*100:.1f}% / "
                     f"{total.multi_prefix_share*100:.1f}% / "
                     f"{total.multi_asn_share*100:.1f}%"))

    assert total.multi_ip_share > total.multi_prefix_share > total.multi_asn_share
    assert 0.82 < total.multi_ip_share < 0.98
    assert 0.60 < total.multi_prefix_share < 0.90
    assert 0.20 < total.multi_asn_share < 0.50

    by_label = {row.label: row for row in rows}
    assert "CN" in by_label and by_label["CN"].domains == max(
        r.domains for r in rows[1:]
    )
    if "TH" in by_label:
        # Thailand's shared single-IP pairs drag its multi-IP share far
        # below everyone else's.
        assert by_label["TH"].multi_ip_share < total.multi_ip_share - 0.2
    if "AU" in by_label:
        # Australia: well spread across prefixes, concentrated in ASNs.
        assert by_label["AU"].multi_prefix_share > 0.75
        assert by_label["AU"].multi_asn_share < 0.30
