"""Figure 4: domains per country in PDNS, 2020.

Paper shape: a four-orders-of-magnitude heavy tail with China,
Thailand, and Brazil on top.
"""

from repro.core.replication import PdnsReplicationAnalysis
from repro.report.figures import Distribution, render_bars

from conftest import paper_line


def test_fig04_domains_per_country(benchmark, bench_study):
    def compute():
        analysis = PdnsReplicationAnalysis(
            bench_study.world.pdns, bench_study.seeds()
        )
        return analysis.figure4(2020)

    fig4 = benchmark.pedantic(compute, rounds=1, iterations=1)

    distribution = Distribution.from_mapping("domains", fig4)
    print()
    print(
        render_bars(
            distribution.top(15),
            title="Figure 4 — domains per country, PDNS 2020 (top 15)",
            value_format="{:.0f}",
        )
    )
    top3 = [label for label, _ in distribution.values[:3]]
    print(paper_line("top countries", "CN, TH, BR lead", ", ".join(top3)))

    counts = sorted(fig4.values(), reverse=True)
    assert top3[0] == "CN"
    assert set(top3) <= {"CN", "TH", "BR"}
    # Heavy tail: top country ≥ 50x the median country.
    median = counts[len(counts) // 2]
    assert counts[0] >= 50 * max(median, 1)
    assert len(fig4) >= 150
