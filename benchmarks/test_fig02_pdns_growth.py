"""Figure 2: domains and countries with PDNS data, 2011-2020.

Paper shape: domains grow 113.5k → 192.6k with a dip from 2019 to 2020
(Chinese consolidation); essentially all countries have data.
"""

from repro.core.replication import PdnsReplicationAnalysis
from repro.report.figures import Series, render_series

from conftest import BENCH_SCALE, paper_line


def test_fig02_pdns_growth(benchmark, bench_study):
    def compute():
        analysis = PdnsReplicationAnalysis(
            bench_study.world.pdns, bench_study.seeds()
        )
        return analysis.figure2()

    fig2 = benchmark.pedantic(compute, rounds=1, iterations=1)

    domains = {year: counts[0] for year, counts in fig2.items()}
    countries = {year: counts[1] for year, counts in fig2.items()}
    print()
    print(
        render_series(
            [
                Series.from_mapping("domains", domains),
                Series.from_mapping("countries", countries),
            ],
            title="Figure 2 — domains & countries in PDNS per year",
        )
    )
    print(
        paper_line(
            "domains 2011 → 2020",
            "113.5k → 192.6k",
            f"{domains[2011]} → {domains[2020]} (scale {BENCH_SCALE})",
        )
    )
    print(paper_line("2019 → 2020 dip", "196k → 192.6k",
                     f"{domains[2019]} → {domains[2020]}"))

    # Shape assertions: monotone growth until 2019, then the dip.
    assert domains[2020] > domains[2011] * 1.4
    assert all(domains[y + 1] > domains[y] for y in range(2011, 2019))
    assert domains[2020] < domains[2019]
    assert countries[2020] >= 150
