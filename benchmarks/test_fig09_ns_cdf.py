"""Figure 9: CDF of the number of nameservers listed per domain.

Paper shape: 98.4% of domains list at least two nameservers; over half
of the countries (109) have no single-NS domain at all, while for 15
countries at least 10% of domains are single-NS.
"""

from repro.core.replication import ActiveReplicationAnalysis
from repro.report.figures import Series, cdf_points, render_series

from conftest import paper_line


def test_fig09_ns_cdf(benchmark, bench_study):
    def compute():
        analysis = ActiveReplicationAnalysis(bench_study.dataset())
        return (
            analysis.figure9_distribution(),
            analysis.share_with_at_least(2),
            analysis.countries_fully_replicated(),
            analysis.countries_with_single_ns_share_over(0.10),
        )

    histogram, ge2, fully, hotspots = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    cdf = dict(cdf_points(histogram))
    print()
    print(
        render_series(
            [Series.from_mapping("CDF", {k: v * 100 for k, v in cdf.items()})],
            title="Figure 9 — CDF of #nameservers per domain (%)",
            y_format="{:.1f}",
        )
    )
    print(paper_line("domains with ≥2 NS", "98.4%", f"{ge2 * 100:.2f}%"))
    print(paper_line("countries with no d_1NS", "109", str(fully)))
    print(paper_line("countries ≥10% d_1NS", "15", str(len(hotspots))))

    assert 0.95 < ge2 < 1.0
    assert max(histogram, key=histogram.get) == 2
    assert fully > 60
    assert 3 <= len(hotspots) <= 40
