"""Ablation: provider-identification tricks (paper §IV-B).

Amazon spreads its nameservers across hundreds of base domains
(``awsdns-NN.tld``); identifying it takes the generative-name regex,
not a fixed domain list.  Disabling the pattern matching collapses the
measured Amazon footprint while fixed-domain providers (Cloudflare,
GoDaddy) are unaffected — regenerating the paper's methodological point.
"""

from repro.core.centralization import CentralizationAnalysis
from repro.core.provider_id import ProviderMatcher
from repro.report.tables import render_table

from conftest import paper_line


def test_ablation_provider_identification(benchmark, bench_study):
    def run_all():
        variants = {
            "full": ProviderMatcher(),
            "no-patterns": ProviderMatcher(use_patterns=False),
            "no-soa": ProviderMatcher(use_soa=False),
        }
        out = {}
        for name, matcher in variants.items():
            analysis = CentralizationAnalysis(
                bench_study.pdns_replication(), matcher
            )
            out[name] = {
                provider: analysis.usage(provider, 2020).domains
                for provider in ("amazon", "azure", "cloudflare", "godaddy")
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    providers = ("amazon", "azure", "cloudflare", "godaddy")
    print()
    print(
        render_table(
            ["Matcher"] + list(providers),
            [
                [name] + [results[name][p] for p in providers]
                for name in ("full", "no-patterns", "no-soa")
            ],
            title="Ablation — provider identification, 2020 domain counts",
        )
    )
    lost = results["full"]["amazon"] - results["no-patterns"]["amazon"]
    print(paper_line("regex value for Amazon", "required (hundreds of base domains)",
                     f"{lost} of {results['full']['amazon']} domains lost without it"))
    soa_lost = sum(
        results["full"][p] - results["no-soa"][p] for p in providers
    )
    print(paper_line("SOA value (vanity deployments)", "recovers hidden customers",
                     f"{soa_lost} domains lost without MNAME/RNAME matching"))

    # Without the patterns, the pattern-named clouds mostly vanish...
    assert results["no-patterns"]["amazon"] < results["full"]["amazon"] * 0.5
    assert results["no-patterns"]["azure"] <= results["full"]["azure"]
    # ...while fixed-base-domain providers keep their named customers
    # (only SOA-identified vanity deployments are at stake for them).
    assert results["no-patterns"]["cloudflare"] >= results["no-soa"]["cloudflare"]
    # The SOA fallback recovers vanity-branded customers across the board.
    assert soa_lost > 0
    for provider in providers:
        assert results["no-soa"][provider] <= results["full"][provider]
