"""Figure 7: private (in-d_gov) deployments, d_1NS vs all domains.

Paper shape: >71% of single-NS domains self-host every year, versus
<34% of domains overall — single-NS deployments are predominantly small
entities running their own box.
"""

from repro.core.replication import PdnsReplicationAnalysis
from repro.report.figures import Series, render_series

from conftest import paper_line


def test_fig07_private_deployment(benchmark, bench_study):
    def compute():
        analysis = PdnsReplicationAnalysis(
            bench_study.world.pdns, bench_study.seeds()
        )
        return analysis.figure7()

    fig7 = benchmark.pedantic(compute, rounds=1, iterations=1)

    singles = {y: s * 100 for y, (s, _) in fig7.items()}
    overall = {y: o * 100 for y, (_, o) in fig7.items()}
    print()
    print(
        render_series(
            [
                Series.from_mapping("d_1NS private %", singles),
                Series.from_mapping("all private %", overall),
            ],
            title="Figure 7 — private ADNS deployment share per year",
            y_format="{:.1f}",
        )
    )
    print(paper_line("d_1NS private floor", ">71% every year",
                     f"min {min(singles.values()):.0f}%"))
    print(paper_line("overall private ceiling", "<34% every year",
                     f"max {max(overall.values()):.0f}%"))

    for year in fig7:
        assert singles[year] > overall[year] + 20  # the gap is the finding
    assert min(singles.values()) > 55
    assert max(overall.values()) < 45
