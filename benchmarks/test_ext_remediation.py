"""Extension experiment: the §V-B remediation counterfactual.

Not a paper table — the paper could only survey remedies.  Here we
apply the registry-side toolbox (EPP deletes/updates, CSYNC sync,
registry locks) to the measured world and re-run the whole campaign,
quantifying how much of each §IV finding the tooling can actually
retire, and how much survives because it lives in child-served data.
"""

from repro.core.study import GovernmentDnsStudy
from repro.remedies import RemediationSweeper
from repro.report.tables import format_percent, render_table
from repro.worldgen import WorldConfig, WorldGenerator

from conftest import BENCH_SEED, paper_line

_SCALE = 0.01  # three full campaigns; keep the world small


def test_ext_remediation_counterfactual(benchmark):
    def run():
        world = WorldGenerator(
            WorldConfig(seed=BENCH_SEED, scale=_SCALE)
        ).generate()
        before_study = GovernmentDnsStudy(world)
        before = before_study.headline()
        report = RemediationSweeper(before_study).sweep()
        after = GovernmentDnsStudy(world).headline()
        return before, report, after

    before, report, after = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["Finding", "Before sweep", "After sweep"],
            [
                ["any defective", format_percent(before["defective_any"]),
                 format_percent(after["defective_any"])],
                ["fully defective", format_percent(before["defective_full"]),
                 format_percent(after["defective_full"])],
                ["P = C", format_percent(before["consistent_share"]),
                 format_percent(after["consistent_share"])],
            ],
            title="Extension — registry-toolbox remediation sweep",
        )
    )
    print(paper_line("changes applied", "n/a (survey only in the paper)",
                     f"{report.total_changes} "
                     f"({len(report.zombies_deleted)} deletes, "
                     f"{len(report.delegations_updated)} updates, "
                     f"{len(report.synchronized)} syncs, "
                     f"{len(report.locked)} locks)"))

    assert report.total_changes > 0
    # Zombies are the registry's to kill: they collapse.
    assert after["defective_full"] < before["defective_full"] * 0.5
    # Consistency improves via CSYNC + parent-side updates.
    assert after["consistent_share"] > before["consistent_share"]
    # But child-served breakage survives: the toolbox is not a cure.
    assert after["defective_any"] > 0.05
