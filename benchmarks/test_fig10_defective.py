"""Figure 10 (a/b): defective delegations overall and per country.

Paper shape: 29.5% of domains have some defective delegation, 25.4%
partial-only (so a few percent fully defective), and the distribution
is dominated by a few d_gov with many stale subdomains (Turkey, Brazil,
Mexico).
"""

from repro.core.delegation import DelegationAnalysis
from repro.report.figures import Distribution, render_bars

from conftest import paper_line


def test_fig10_defective(benchmark, bench_study):
    def compute():
        analysis = DelegationAnalysis(
            bench_study.dataset(),
            registrar=bench_study.world.registrar,
        )
        return analysis.prevalence(), analysis.figure10_by_country()

    prevalence, by_country = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(
        render_bars(
            Distribution.from_mapping(
                "any-defect %",
                {
                    iso2: row["any"] * 100
                    for iso2, row in by_country.items()
                    if row["domains"] >= 20
                },
            ).top(20),
            title="Figure 10 — % of domains with a defective delegation "
            "(countries with ≥20 domains)",
        )
    )
    print(paper_line("any defective", "29.5%", f"{prevalence['any']*100:.1f}%"))
    print(paper_line("partially defective", "25.4%", f"{prevalence['partial']*100:.1f}%"))
    print(paper_line("fully defective", "~4.1%", f"{prevalence['full']*100:.1f}%"))

    assert 0.22 < prevalence["any"] < 0.38
    assert 0.18 < prevalence["partial"] < 0.33
    assert 0.02 < prevalence["full"] < 0.09
    assert prevalence["partial"] > prevalence["full"] * 3

    # The calibrated hot spots rank high.
    sizable = {
        iso2: row["any"]
        for iso2, row in by_country.items()
        if row["domains"] >= 50
    }
    if {"TR", "AU"} <= set(sizable):
        assert sizable["TR"] > sizable["AU"]
