"""Table III: top providers ranked by country reach, 2011 vs 2020.

Paper shape: the 2011 list is 2000s shared hosts (websitewelcome,
domaincontrol, zoneedit…); by 2020 Cloudflare and AWS lead, and the
most widespread provider's reach grows 52 → 85 countries (+60%).
"""

from repro.core.centralization import CentralizationAnalysis
from repro.report.tables import format_percent, render_table

from conftest import BENCH_SCALE, paper_line

_CLOUD_KEYS = {"cloudflare", "amazon", "azure", "digitalocean", "microsoftonline"}
_LEGACY_KEYS = {
    "websitewelcome", "godaddy", "zoneedit", "dreamhost", "bluehost",
    "hostgator", "ixwebhosting", "hostmonster", "everydns", "pipedns",
    "stabletransit", "dnsmadeeasy",
}


def test_tab3_top_providers(benchmark, bench_study):
    def compute():
        analysis = CentralizationAnalysis(bench_study.pdns_replication())
        return (
            analysis.top_providers(2011, limit=10),
            analysis.top_providers(2020, limit=10),
        )

    top_2011, top_2020 = benchmark.pedantic(compute, rounds=1, iterations=1)

    for year, rows in ((2011, top_2011), (2020, top_2020)):
        print()
        print(
            render_table(
                ["Provider", "Domains", "Share", "Groups", "Countries"],
                [
                    [
                        row.provider,
                        row.domains,
                        format_percent(row.domain_share),
                        row.groups,
                        row.countries,
                    ]
                    for row in rows
                ],
                title=f"Table III — top providers by country reach, {year} "
                f"(scale {BENCH_SCALE})",
            )
        )
    growth = (top_2011[0].countries, top_2020[0].countries)
    print(paper_line("max reach growth", "52 → 85 countries (+60%)",
                     f"{growth[0]} → {growth[1]}"))

    # Reach of the most widespread provider grows substantially.  (The
    # absolute counts are occupancy-limited at small scales — tiny
    # countries hold too few domains to register a provider — so the
    # shape check is growth + ranking, not the raw 52/85.)
    assert growth[1] > growth[0] * 1.3
    # Rankings: 2011 is legacy-host territory; the 2020 top includes
    # the new cloud providers.
    keys_2011 = {row.provider for row in top_2011}
    keys_2020 = {row.provider for row in top_2020}
    assert keys_2011 & _LEGACY_KEYS
    assert not (keys_2011 & _CLOUD_KEYS)
    assert {"cloudflare", "amazon"} <= keys_2020
    # The 2020 top-10 carries a larger share of all domains than 2011's.
    share_2011 = sum(row.domain_share for row in top_2011)
    share_2020 = sum(row.domain_share for row in top_2020)
    assert share_2020 > share_2011
