"""Figure 14: distribution of the disagreement rate per d_gov.

Paper shape: wide spread — the highest-disagreement countries tend to
have few responsive domains, but some large countries also disagree
often; the bulk of countries sit well below 50%.
"""

from repro.core.consistency import ConsistencyAnalysis
from repro.report.figures import Distribution, render_bars

from conftest import paper_line


def test_fig14_disagreement(benchmark, bench_study):
    def compute():
        analysis = ConsistencyAnalysis(bench_study.dataset())
        return analysis.figure14_by_country(min_domains=3)

    rates = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(
        render_bars(
            Distribution.from_mapping(
                "disagreement %", {k: v * 100 for k, v in rates.items()}
            ).top(20),
            title="Figure 14 — P≠C rate per d_gov (top 20)",
        )
    )
    values = sorted(rates.values())
    median = values[len(values) // 2]
    print(paper_line("median country disagreement", "~20-25%", f"{median*100:.1f}%"))
    print(paper_line("countries classified", "most of 193", str(len(rates))))

    assert len(rates) > 60
    assert 0.08 < median < 0.40
    # Spread exists: some countries disagree several times more than
    # the median, none exceed 100%.
    assert max(values) > 2 * median or max(values) > 0.5
    assert all(0.0 <= v <= 1.0 for v in values)
