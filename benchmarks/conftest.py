"""Benchmark fixtures.

The world is generated and probed once per session at
``REPRO_BENCH_SCALE`` (default 0.05 ≈ 8.5k probe targets; the paper is
scale 1.0 ≈ 147k).  Each benchmark then times one analysis — the code
that regenerates a specific paper table or figure — and prints the
reproduced output next to the paper's reference numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.core.study import GovernmentDnsStudy
from repro.worldgen import WorldConfig, WorldGenerator

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def bench_world():
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    return WorldGenerator(config).generate()


@pytest.fixture(scope="session")
def bench_study(bench_world):
    study = GovernmentDnsStudy(bench_world)
    study.dataset()  # run the probe campaign once, up front
    study.pdns_replication().year_states()  # and the PDNS summarization
    return study


def paper_line(label: str, paper: str, measured: str) -> str:
    return f"  {label:<42} paper: {paper:<18} measured: {measured}"
