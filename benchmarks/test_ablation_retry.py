"""Ablation: the second query round (paper §III-B).

On a network where a share of servers transiently drop datagrams, a
single-round campaign over-reports defective delegations; the retry
round absorbs most transient failures.  This regenerates the design
rationale: without retries, "defective" conflates broken with unlucky.
"""

from repro.core.delegation import DelegationAnalysis
from repro.core.probe import ActiveProber, ProbeConfig
from repro.core.study import GovernmentDnsStudy
from repro.report.tables import format_percent, render_table
from repro.worldgen import WorldConfig, WorldGenerator

from conftest import BENCH_SEED, paper_line

_ABLATION_SCALE = 0.01  # two full probe campaigns; keep the world small


def _campaign(world, retry_round):
    study = GovernmentDnsStudy(world)
    prober = ActiveProber(
        world.network,
        world.root_addresses,
        world.probe_source,
        config=ProbeConfig(retry_round=retry_round, retries=0),
    )
    dataset = prober.probe_all(study.targets())
    prevalence = DelegationAnalysis(dataset).prevalence()
    return prevalence, dataset


def test_ablation_retry_round(benchmark):
    flaky_config = WorldConfig(
        seed=BENCH_SEED,
        scale=_ABLATION_SCALE,
        flaky_server_share=0.10,
        flaky_loss_rate=0.55,
    )

    def run_both():
        world_a = WorldGenerator(flaky_config).generate()
        no_retry, _ = _campaign(world_a, retry_round=False)
        world_b = WorldGenerator(flaky_config).generate()
        with_retry, _ = _campaign(world_b, retry_round=True)
        return no_retry, with_retry

    no_retry, with_retry = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["Campaign", "any defective", "partial", "full"],
            [
                ["single round", format_percent(no_retry["any"]),
                 format_percent(no_retry["partial"]), format_percent(no_retry["full"])],
                ["with retry round", format_percent(with_retry["any"]),
                 format_percent(with_retry["partial"]), format_percent(with_retry["full"])],
            ],
            title="Ablation — retry round on a 10%-flaky network",
        )
    )
    print(paper_line("direction", "retries reduce apparent defects",
                     f"{no_retry['any']*100:.1f}% → {with_retry['any']*100:.1f}%"))

    # The retry round must recover transient failures: strictly fewer
    # apparent defects, most of the reduction in the full-defect bucket.
    assert with_retry["any"] < no_retry["any"]
    assert with_retry["full"] <= no_retry["full"]
