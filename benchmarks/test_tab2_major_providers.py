"""Table II: government usage of major DNS providers, 2011 vs 2020.

Paper shape: Amazon 5 → 5,193 domains and Cloudflare 12 → 4,136
(orders of magnitude); Azure appears from nothing; GoDaddy roughly
quintuples; DNSPod stays China-bound; most usage is single-provider
(d_1P ≈ domains).
"""

from repro.core.centralization import CentralizationAnalysis, MAJOR_PROVIDERS
from repro.report.tables import format_percent, render_table

from conftest import BENCH_SCALE, paper_line


def test_tab2_major_providers(benchmark, bench_study):
    def compute():
        analysis = CentralizationAnalysis(bench_study.pdns_replication())
        return analysis.table2()

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for provider in sorted(table):
        u11, u20 = table[provider][2011], table[provider][2020]
        rows.append(
            [
                provider,
                u11.domains,
                u11.single_provider_domains,
                u11.groups,
                u20.domains,
                u20.single_provider_domains,
                u20.groups,
            ]
        )
    print()
    print(
        render_table(
            ["Provider", "2011 dom", "2011 d1P", "2011 grp",
             "2020 dom", "2020 d1P", "2020 grp"],
            rows,
            title=f"Table II — major provider usage (scale {BENCH_SCALE})",
        )
    )
    amazon = table["amazon"]
    cloudflare = table["cloudflare"]
    azure = table["azure"]
    print(paper_line("Amazon domains", "5 → 5,193 (0.0% → 2.7%)",
                     f"{amazon[2011].domains} → {amazon[2020].domains} "
                     f"({amazon[2011].domain_share*100:.1f}% → {amazon[2020].domain_share*100:.1f}%)"))
    print(paper_line("Cloudflare domains", "12 → 4,136 (0.0% → 2.1%)",
                     f"{cloudflare[2011].domains} → {cloudflare[2020].domains} "
                     f"({cloudflare[2020].domain_share*100:.1f}% in 2020)"))
    print(paper_line("Azure domains", "0 → 1,574",
                     f"{azure[2011].domains} → {azure[2020].domains}"))

    # Who wins and by what factor: the cloud providers explode.
    assert amazon[2020].domains > max(20 * max(amazon[2011].domains, 1), 30)
    assert cloudflare[2020].domains > max(
        15 * max(cloudflare[2011].domains, 1), 30
    )
    assert azure[2011].domains == 0 and azure[2020].domains > 10
    assert 0.015 < amazon[2020].domain_share < 0.045
    assert 0.012 < cloudflare[2020].domain_share < 0.040
    # GoDaddy grows but far more modestly.
    godaddy = table["godaddy"]
    assert godaddy[2020].domains > godaddy[2011].domains
    assert godaddy[2020].domains < amazon[2020].domains
    # DNSPod stays essentially single-country.
    dnspod = table["dnspod"]
    assert dnspod[2020].countries <= 2
    # d_1P dominates usage for the managed-DNS providers.
    assert (
        cloudflare[2020].single_provider_domains
        > cloudflare[2020].domains * 0.5
    )
