"""Figure 6: single-nameserver domain churn, 2012-2020.

Paper shape: the 2011 d_1NS cohort decays steadily to ~21% by 2020;
each year 14-23% of d_1NS are new and 16-26% of the previous year's are
gone — a persistent pattern, not one stubborn cohort.
"""

from repro.core.replication import PdnsReplicationAnalysis
from repro.report.figures import Series, render_series

from conftest import paper_line


def test_fig06_d1ns_churn(benchmark, bench_study):
    def compute():
        analysis = PdnsReplicationAnalysis(
            bench_study.world.pdns, bench_study.seeds()
        )
        return analysis.figure6()

    fig6 = benchmark.pedantic(compute, rounds=1, iterations=1)

    overlap = {
        y: row["overlap_2011"] * 100
        for y, row in fig6.items()
        if "overlap_2011" in row
    }
    new_share = {
        y: row["new_share"] * 100 for y, row in fig6.items() if "new_share" in row
    }
    gone_share = {
        y: row["gone_share"] * 100
        for y, row in fig6.items()
        if "gone_share" in row
    }
    print()
    print(
        render_series(
            [
                Series.from_mapping("overlap-2011 %", overlap),
                Series.from_mapping("new %", new_share),
                Series.from_mapping("gone %", gone_share),
            ],
            title="Figure 6 — d_1NS churn",
            y_format="{:.1f}",
        )
    )
    print(paper_line("2011 cohort alive in 2020", "21%", f"{overlap[2020]:.1f}%"))
    print(paper_line("yearly new d_1NS", "14-23%",
                     f"{min(new_share.values()):.0f}-{max(new_share.values()):.0f}%"))
    print(paper_line("yearly gone d_1NS", "16-26%",
                     f"{min(gone_share.values()):.0f}-{max(gone_share.values()):.0f}%"))

    # Monotone decay of the 2011 cohort, landing near the paper's 21%.
    years = sorted(overlap)
    assert all(overlap[a] >= overlap[b] for a, b in zip(years, years[1:]))
    assert 10 < overlap[2020] < 40
    # Persistent churn in both directions every year.
    assert all(5 < v < 40 for v in new_share.values())
    assert all(5 < v < 40 for v in gone_share.values())
