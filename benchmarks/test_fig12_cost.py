"""Figure 12: cost to register the available nameserver domains.

Paper shape: prices from $0.01 to $20,000 with the median at $11.99 —
a retail-list-price bulge with promo and premium tails.  The takeaway
("the cost to leverage one of these dangling records is not high") is
asserted as: at least half the exposed domains cost under $20.
"""

from repro.core.delegation import DelegationAnalysis
from repro.report.tables import render_table

from conftest import paper_line


def test_fig12_cost(benchmark, bench_study):
    def compute():
        analysis = DelegationAnalysis(
            bench_study.dataset(),
            registrar=bench_study.world.registrar,
            government_suffixes={
                iso2: seed.d_gov
                for iso2, seed in bench_study.seeds().items()
            },
        )
        exposure = analysis.hijack_exposure()
        return exposure.prices(), exposure.price_stats()

    prices, stats = benchmark.pedantic(compute, rounds=1, iterations=1)

    buckets = [
        ("< $1", sum(1 for p in prices if p < 1)),
        ("$1 - $20", sum(1 for p in prices if 1 <= p < 20)),
        ("$20 - $300", sum(1 for p in prices if 20 <= p < 300)),
        ("$300 - $20k", sum(1 for p in prices if p >= 300)),
    ]
    print()
    print(
        render_table(
            ["Price band", "d_ns"],
            buckets,
            title="Figure 12 — registration-cost distribution",
        )
    )
    print(paper_line("min / median / max", "$0.01 / $11.99 / $20,000",
                     f"${stats['min']:.2f} / ${stats['median']:.2f} / "
                     f"${stats['max']:.2f}"))

    assert prices
    assert stats["min"] < 5.0
    assert 8.0 <= stats["median"] <= 20.0
    assert stats["max"] > 300.0
    cheap = sum(1 for p in prices if p < 20)
    assert cheap / len(prices) >= 0.5
