"""Figure 3: nameserver hostnames seen in PDNS, 2011-2020.

Paper shape: grows in step with the domain curve.
"""

from repro.core.replication import PdnsReplicationAnalysis
from repro.report.figures import Series, render_series

from conftest import paper_line


def test_fig03_ns_growth(benchmark, bench_study):
    def compute():
        analysis = PdnsReplicationAnalysis(
            bench_study.world.pdns, bench_study.seeds()
        )
        return analysis.figure3()

    fig3 = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(
        render_series(
            [Series.from_mapping("nameservers", fig3)],
            title="Figure 3 — nameserver hostnames in PDNS per year",
        )
    )
    print(paper_line("growth 2011 → 2020", "monotone-ish, ~1.7x",
                     f"{fig3[2011]} → {fig3[2020]}"))

    assert fig3[2020] > fig3[2011] * 1.3
    # Broad growth: at least 7 of the 9 steps increase.
    ups = sum(1 for y in range(2011, 2020) if fig3[y + 1] > fig3[y])
    assert ups >= 7
