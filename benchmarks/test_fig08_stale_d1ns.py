"""Figure 8: share of single-NS domains with no authoritative response.

Paper shape: 60.1% of d_1NS are stale overall, with some d_gov far
higher (Indonesia, Kyrgyzstan, Mexico above one half).
"""

from repro.core.replication import ActiveReplicationAnalysis
from repro.report.figures import Distribution, render_bars

from conftest import paper_line


def test_fig08_stale_d1ns(benchmark, bench_study):
    def compute():
        analysis = ActiveReplicationAnalysis(bench_study.dataset())
        return analysis.figure8_overall(), analysis.figure8_by_country(min_singles=3)

    overall, by_country = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(
        render_bars(
            Distribution.from_mapping(
                "stale share", {k: v * 100 for k, v in by_country.items()}
            ).top(15),
            title="Figure 8 — % of d_1NS with no authoritative response",
        )
    )
    print(paper_line("overall stale d_1NS", "60.1%", f"{overall * 100:.1f}%"))

    assert 0.40 < overall < 0.80
    if by_country:
        assert max(by_country.values()) > overall  # hot spots exist
